"""Command-line entry point: regenerate figures and ablations.

Examples::

    python -m repro.experiments --figure 3
    python -m repro.experiments --figure all --scale smoke
    python -m repro.experiments --figure all --jobs 0   # all cores
    python -m repro.experiments --ablation variance
    python -m repro.experiments --figure 4 --csv fig4.csv
    python -m repro.experiments --figure 3 --trace-out run.perfetto.json \
        --metrics-out metrics.json
    python -m repro.experiments profile --figure 4 --scale smoke \
        --attrib-out attrib.json --flame-out profile.collapsed
    python -m repro.experiments hotspots --figure 4 --scale smoke \
        --kernelprof-out hotspots.json --flame-out kernel.collapsed
    python -m repro.experiments decisions --figure 4 --scale smoke \
        --decisions-out decisions.jsonl --perfetto-out decisions.trace.json
    python -m repro.experiments --figure all --jobs 0 \
        --sweep-log sweep.jsonl --heartbeat
    python -m repro.experiments diff baseline/ candidate/ \
        --report-out diff.txt --json-out diff.json --fail-on-regression
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.experiments.ablations import ALL_ABLATIONS
from repro.experiments.config import ExperimentScale, figure_spec
from repro.experiments.report import (
    format_ablation,
    format_attribution_summary,
    format_grid,
    format_telemetry_summary,
    grid_to_csv,
)
from repro.experiments.parallel import resolve_jobs, run_figure_parallel
from repro.experiments.runner import run_figure
from repro.obs import kernelprof


def _parse_args(argv):
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the figures and ablations of Chan, "
                    "Dandamudi & Majumdar (IPPS 1997).",
    )
    parser.add_argument(
        "command", nargs="?",
        choices=("profile", "diff", "steady", "hotspots", "decisions"),
        default=None,
        help="'profile' runs the causal profiler over the selected "
             "figures: wait-state attribution per policy, critical "
             "paths, and optional flame/attribution exports; 'diff' "
             "compares two recorded runs (BENCH json / --metrics-out / "
             "--attrib-out documents, or directories of them) and "
             "localises significant regressions to wait-state buckets; "
             "'steady' sweeps an open-system arrival stream over "
             "offered loads with O(1)-memory streaming statistics, "
             "MSER warm-up truncation, and batch-means CIs; 'hotspots' "
             "runs the selected figures under the kernel self-profiler "
             "and prints where the *simulator engine* spent its "
             "wall-clock (per-event-type breakdown, agenda pressure, "
             "callback sites); 'decisions' replays the selected "
             "figures with the scheduler decision ledger on and prints "
             "per-policy why-tables (placements, sizings, deferrals, "
             "quantum-expiry vs block-yield), checking that each job's "
             "queued time decomposes exactly over its deferrals",
    )
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="(diff) the baseline and candidate runs: each a recorded "
             "JSON document or a directory containing them",
    )
    parser.add_argument(
        "--figure", help="figure number 3-6, or 'all'", default=None
    )
    parser.add_argument(
        "--ablation",
        help=f"one of {sorted(ALL_ABLATIONS)}, or 'all'",
        default=None,
    )
    parser.add_argument(
        "--scale", choices=("paper", "smoke"), default="paper",
        help="problem-size scaling (default: paper)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the figure sweep and validation "
             "battery (default 1 = serial; 0 = one per CPU core); "
             "results are cell-for-cell identical to a serial run",
    )
    parser.add_argument(
        "--csv", default=None, help="also write the grid as CSV to this path"
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="record telemetry and write the last cell's run as a "
             "Chrome-trace/Perfetto JSON (open at ui.perfetto.dev)",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="record telemetry and write per-cell metric summaries as JSON",
    )
    parser.add_argument(
        "--attrib-out", default=None, metavar="PATH",
        help="(profile) write the full per-job wait-state attribution "
             "and critical paths as JSON",
    )
    parser.add_argument(
        "--flame-out", default=None, metavar="PATH",
        help="(profile/hotspots) write critical paths (profile) or the "
             "kernel hot-path breakdown (hotspots) as a collapsed-stack "
             "file (open with speedscope or flamegraph.pl)",
    )
    parser.add_argument(
        "--kernelprof-out", default=None, metavar="PATH",
        help="(hotspots) write the full repro-kernelprof/1 document "
             "(per-event-type breakdown, agenda depth percentiles, "
             "events/sec timeline, counters) as JSON",
    )
    parser.add_argument(
        "--sample-every", type=int,
        default=kernelprof.DEFAULT_SAMPLE_EVERY, metavar="N",
        help="(hotspots) read host clocks on roughly one event in N — "
             "step timing and callback timing each get a ~1-in-N "
             "stream with randomised gaps (default "
             f"{kernelprof.DEFAULT_SAMPLE_EVERY}; smaller = finer "
             "attribution, more overhead)",
    )
    parser.add_argument(
        "--memory", action="store_true",
        help="(hotspots) also attribute allocations with sampled "
             "tracemalloc+gc snapshots (roughly doubles allocation "
             "cost; off by default)",
    )
    parser.add_argument(
        "--top", type=int, default=12, metavar="N",
        help="(hotspots) rows per ranked table (default 12)",
    )
    parser.add_argument(
        "--decisions-out", default=None, metavar="PATH",
        help="(decisions) write every run's ledger as consecutive "
             "repro-decisions/1 JSONL segments",
    )
    parser.add_argument(
        "--perfetto-out", default=None, metavar="PATH",
        help="(decisions) write the last cell's trace — scheduler "
             "decision instants on per-scheduler tracks, interleaved "
             "with the ordinary telemetry events — as a Chrome-trace/"
             "Perfetto JSON (open at ui.perfetto.dev)",
    )
    parser.add_argument(
        "--sweep-log", default=None, metavar="PATH",
        help="write the sweep's lifecycle (cell start/finish/retry/"
             "error with wall-clock, worker id, events/sec) as a "
             "repro-sweep/1 JSONL stream",
    )
    parser.add_argument(
        "--heartbeat", dest="heartbeat", action="store_true",
        default=None,
        help="force the live stderr progress line (completed/total "
             "cells, rate, ETA) on; default: on when stderr is a "
             "terminal",
    )
    parser.add_argument(
        "--no-heartbeat", dest="heartbeat", action="store_false",
        help="force the live stderr progress line off",
    )
    parser.add_argument(
        "--report-out", default=None, metavar="PATH",
        help="(diff) also write the human-readable diff report here",
    )
    parser.add_argument(
        "--json-out", default=None, metavar="PATH",
        help="(diff) write the structured repro-diff/1 document here",
    )
    parser.add_argument(
        "--fail-on-regression", action="store_true",
        help="(diff) exit 1 when a significant regression is found, "
             "3 when an attribution profile is truncated (unsound)",
    )
    parser.add_argument(
        "--min-effect", type=float, default=None, metavar="FRAC",
        help="(diff) smallest relative mean-RT change that counts as "
             "significant (default 0.01)",
    )
    parser.add_argument(
        "--wall-tolerance", type=float, default=None, metavar="FRAC",
        help="(diff) allowed fractional wall-clock regression "
             "(default 0.20, calibration-normalised when possible)",
    )
    parser.add_argument(
        "--resamples", type=int, default=None, metavar="N",
        help="(diff) bootstrap resamples per cell (default 2000)",
    )
    parser.add_argument(
        "--rho", default=None, metavar="R1,R2,...",
        help="(steady) offered loads to sweep as a comma list "
             "(default 0.3,0.5,0.7,0.85)",
    )
    parser.add_argument(
        "--duration", type=float, default=200.0, metavar="SECONDS",
        help="(steady) simulated seconds of arrivals per cell "
             "(default 200; jobs in flight still finish)",
    )
    parser.add_argument(
        "--nodes", type=int, default=4, metavar="N",
        help="(steady) machine size per cell (default 4)",
    )
    parser.add_argument(
        "--window", type=float, default=None, metavar="SECONDS",
        help="(steady) time-series window width (default: duration/50)",
    )
    parser.add_argument(
        "--arrival", choices=("poisson", "bursty"), default="poisson",
        help="(steady) arrival discipline (bursty = Markov-modulated "
             "on/off at the same offered load)",
    )
    parser.add_argument(
        "--policies", default="static,ts", metavar="P1,P2",
        help="(steady) comma list of policies to sweep "
             "(default static,ts)",
    )
    parser.add_argument(
        "--seed", type=int, default=7, metavar="N",
        help="(steady) arrival/demand stream seed (default 7)",
    )
    parser.add_argument(
        "--steady-out", default=None, metavar="PATH",
        help="(steady) write every cell's windowed time series and "
             "summary as consecutive repro-steady/1 JSONL segments",
    )
    parser.add_argument(
        "--decisions", action="store_true",
        help="(steady) run with the scheduler decision ledger on: "
             "every streamed window then carries O(1)-memory "
             "decisions/deferrals rate columns",
    )
    parser.add_argument(
        "--chart", action="store_true",
        help="also render figures as ASCII bar charts",
    )
    parser.add_argument(
        "--sensitivity", action="store_true",
        help="run the calibration-sensitivity sweep (slow)",
    )
    parser.add_argument(
        "--topologies", action="store_true",
        help="print the topology property table",
    )
    parser.add_argument(
        "--validate", action="store_true",
        help="run the closed-form validation report",
    )
    args = parser.parse_args(argv)
    if args.command in ("profile", "hotspots", "decisions") and \
            args.figure is None:
        args.figure = "4"  # the paper's central comparison
    if args.command == "diff":
        if len(args.paths) != 2:
            parser.error("diff takes exactly two run paths: "
                         "diff <baseline> <candidate>")
    elif args.paths:
        parser.error(f"unexpected positional arguments {args.paths}")
    if args.command == "hotspots" and args.sample_every < 1:
        parser.error("--sample-every must be >= 1")
    if args.command not in ("diff", "steady", "hotspots", "decisions") \
            and not (args.figure or args.ablation or args.sensitivity
                     or args.topologies or args.validate):
        parser.error("pass a command (profile, diff, steady, hotspots, "
                     "decisions), --figure, --ablation, --sensitivity, "
                     "--topologies and/or --validate")
    return args


def _sweep_observer(args):
    """Build the sweep observer from ``--sweep-log``/``--heartbeat``.

    Returns ``None`` when neither is active — the executors then skip
    every hook, so an unobserved sweep is byte-identical to the old
    behaviour.  The heartbeat defaults to "on when stderr is a
    terminal" and writes only to stderr, never stdout.
    """
    from repro.obs.sweeplog import Heartbeat, MultiObserver, SweepLog

    observers = []
    if args.sweep_log:
        observers.append(SweepLog(args.sweep_log))
    heartbeat = args.heartbeat
    if heartbeat is None:
        heartbeat = sys.stderr.isatty()
    if heartbeat:
        observers.append(Heartbeat())
    if not observers:
        return None
    return observers[0] if len(observers) == 1 else MultiObserver(observers)


def _artifact(out, path, schema, detail=""):
    """One line per written artifact: path, schema id, optional detail.

    Every subcommand that writes a document reports it through here so
    the terminal output always says *what* was written, not just where
    — ``schema`` is a registry id like ``repro-metrics/1`` for JSON/
    JSONL documents, or a plain format name (``csv``, ``chrome-trace``,
    ``collapsed-stacks``, ``text``) for unversioned formats.
    """
    tail = f"; {detail}" if detail else ""
    print(f"wrote {path} [{schema}{tail}]", file=out)


def _run_figures(args, out=None):
    """Run the selected figures; returns the number of failed cells."""
    out = out or sys.stdout
    scale = (ExperimentScale.paper() if args.scale == "paper"
             else ExperimentScale.smoke())
    numbers = [3, 4, 5, 6] if args.figure == "all" else [int(args.figure)]
    profiling = (args.command == "profile" or args.attrib_out
                 or args.flame_out)
    telemetry_wanted = bool(args.trace_out or args.metrics_out or profiling)
    jobs = resolve_jobs(args.jobs)
    observer = _sweep_observer(args)
    try:
        return _run_figure_sweep(args, numbers, scale, jobs, observer,
                                 telemetry_wanted, profiling, out)
    finally:
        # One observer watches every figure's sweep; its resources
        # (the sweep-log stream) outlive any single sweep.
        if observer is not None:
            observer.close()


def _run_figure_sweep(args, numbers, scale, jobs, observer,
                      telemetry_wanted, profiling, out):
    all_cells = []
    all_telemetry = []  # (figure, label, policy, Telemetry)
    all_errors = []
    for number in numbers:
        spec = figure_spec(number)
        start = time.time()
        sink = [] if telemetry_wanted else None

        def progress(cell):
            print(f"  {cell.label:>4} {cell.policy:<12} "
                  f"rt={cell.mean_response_time:9.3f}s", file=out)

        print(f"=== Figure {number}: {spec.title} [{scale.name}]", file=out)
        if jobs > 1:
            errors = []
            cells = run_figure_parallel(spec, scale, jobs=jobs,
                                        progress=progress,
                                        telemetry_sink=sink, errors=errors,
                                        observer=observer)
            for err in errors:
                print(f"  {err.describe()}", file=out)
            all_errors.extend(errors)
        else:
            cells = run_figure(spec, scale, progress=progress,
                               telemetry_sink=sink, observer=observer)
        if cells:
            print(format_grid(cells,
                              title=f"Figure {number} ({spec.title})"),
                  file=out)
        else:
            print(f"Figure {number} ({spec.title}): no cells succeeded",
                  file=out)
        if sink:
            print(format_telemetry_summary(sink), file=out)
            if profiling:
                print(format_attribution_summary(sink), file=out)
            all_telemetry.extend((number, label, policy, tel)
                                 for label, policy, tel in sink)
        if args.chart:
            from repro.trace import render_series

            series = {}
            for cell in cells:
                series.setdefault(cell.policy, {})[cell.label] = (
                    cell.mean_response_time
                )
            print(render_series(series), file=out)
        print(f"  ({time.time() - start:.1f}s)", file=out)
        all_cells.extend(cells)
    if args.csv:
        with open(args.csv, "w") as fh:
            fh.write(grid_to_csv(all_cells))
        _artifact(out, args.csv, "csv", f"{len(all_cells)} grid cells")
    if args.sweep_log:
        # Observers must not perturb stdout (it is byte-identical with
        # and without them), so this artifact line goes to stderr.
        _artifact(sys.stderr, args.sweep_log, "repro-sweep/1")
    if telemetry_wanted:
        _write_telemetry(args, all_telemetry, out)
    if profiling and (args.attrib_out or args.flame_out):
        _write_profile(args, all_telemetry, out)
    if all_errors:
        # Structured failure summary: emitted whether the sweep failed
        # wholesale or only partially, so partial successes never read
        # as clean runs.
        print(f"=== {len(all_errors)} cell(s) FAILED "
              f"({len(all_cells)} succeeded)", file=out)
        for err in all_errors:
            print(f"  {err.describe()}", file=out)
    return len(all_errors)


def _write_telemetry(args, entries, out):
    """Export recorded telemetry (Perfetto trace + metrics JSON).

    ``entries`` is the figure-tagged sweep telemetry:
    ``(figure, label, policy, Telemetry)`` tuples.
    """
    if not entries:
        print("no telemetry recorded", file=out)
        return
    if args.trace_out:
        from repro.obs import write_perfetto

        figure, label, policy, tel = entries[-1]
        n = write_perfetto(tel, args.trace_out)
        summary = tel.summary()
        _artifact(out, args.trace_out, "chrome-trace",
                  f"{n} trace events from cell {label} ({policy}); "
                  f"{summary['events']} recorded, "
                  f"{summary['dropped']} dropped")
    if args.metrics_out:
        from repro.experiments.parallel import merged_metrics

        doc = {
            "schema": "repro-metrics/1",
            "cells": [
                {
                    "figure": figure,
                    "label": label,
                    "policy": policy,
                    "summary": tel.summary(),
                    "metrics": tel.metrics.to_dict(),
                }
                for figure, label, policy, tel in entries
            ],
            # Sweep-wide aggregate: counters add, histograms merge
            # exactly (identical whether cells ran serially or on a
            # worker pool).
            "combined": merged_metrics(
                [(label, policy, tel)
                 for _fig, label, policy, tel in entries]
            ).to_dict(),
        }
        with open(args.metrics_out, "w") as fh:
            json.dump(doc, fh, indent=1)
        dropped = sum(c["summary"]["dropped"] for c in doc["cells"])
        _artifact(out, args.metrics_out, "repro-metrics/1",
                  f"{len(doc['cells'])} cells, "
                  f"{dropped} events dropped overall")


def _write_profile(args, entries, out):
    """Export the causal profile (attribution JSON + collapsed stacks).

    Every attribution cell carries its figure and the recorder's
    dropped-event count: the run differ refuses to trust bucket deltas
    built from a truncated trace, so the evidence of truncation must
    travel with the profile.
    """
    from repro.obs import collapsed_lines, profile_run

    if not entries:
        print("no telemetry recorded to profile", file=out)
        return
    profiles = [(figure, label, policy, profile_run(tel),
                 tel.recorder.dropped)
                for figure, label, policy, tel in entries]
    if args.attrib_out:
        doc = {
            "schema": "repro-profile/1",
            "cells": [
                {"figure": figure, "label": label, "policy": policy,
                 "dropped": dropped, **prof.to_dict()}
                for figure, label, policy, prof, dropped in profiles
            ],
        }
        with open(args.attrib_out, "w") as fh:
            json.dump(doc, fh, indent=1)
        jobs = sum(len(p.jobs) for _f, _l, _p, p, _d in profiles)
        _artifact(out, args.attrib_out, "repro-profile/1",
                  f"{len(profiles)} cells, {jobs} jobs attributed")
    if args.flame_out:
        lines = []
        for _figure, label, policy, prof, _dropped in profiles:
            lines.extend(
                collapsed_lines(prof.paths, prefix=f"{label}:{policy}")
            )
        with open(args.flame_out, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines))
            if lines:
                fh.write("\n")
        _artifact(out, args.flame_out, "collapsed-stacks",
                  f"{len(lines)} stacks; open with speedscope "
                  f"or flamegraph.pl")


def _run_diff(args, out=None):
    """``diff <baseline> <candidate>``: the run-diff regression explainer.

    Returns the process exit code: 0 clean, 1 significant regression
    (with ``--fail-on-regression``), 3 when an attribution profile was
    built from a truncated trace — those deltas are unsound and must
    not pass a gate silently.
    """
    out = out or sys.stdout
    from repro.obs.diff import (
        DEFAULT_MIN_EFFECT,
        DEFAULT_RESAMPLES,
        DEFAULT_WALL_TOLERANCE,
        diff_runs,
        format_diff_report,
        load_run_bundle,
    )

    base_path, cand_path = args.paths
    try:
        baseline = load_run_bundle(base_path)
        candidate = load_run_bundle(cand_path)
    except (OSError, ValueError) as exc:
        print(f"diff: {exc}", file=sys.stderr)
        return 2
    result = diff_runs(
        baseline, candidate,
        min_effect=(args.min_effect if args.min_effect is not None
                    else DEFAULT_MIN_EFFECT),
        resamples=(args.resamples if args.resamples is not None
                   else DEFAULT_RESAMPLES),
        wall_tolerance=(args.wall_tolerance
                        if args.wall_tolerance is not None
                        else DEFAULT_WALL_TOLERANCE),
    )
    report = format_diff_report(result)
    print(report, end="", file=out)
    if args.report_out:
        with open(args.report_out, "w", encoding="utf-8") as fh:
            fh.write(report)
        _artifact(out, args.report_out, "text", "human-readable report")
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(result.to_dict(), fh, indent=1)
        _artifact(out, args.json_out, "repro-diff/1",
                  f"{len(result.cells)} cells")
    return result.exit_code(fail_on_regression=args.fail_on_regression)


def _run_hotspots(args, out=None):
    """``hotspots``: profile the simulation engine itself.

    Runs the selected figures serially under the kernel self-profiler
    (parallel workers would profile only the parent process, so
    ``--jobs`` is ignored here) and prints the ranked hot-path report:
    which event types the engine spent its wall-clock on, agenda
    pressure, sampled callback sites, and the model-layer counters.
    ``--kernelprof-out`` writes the validated ``repro-kernelprof/1``
    document; ``--flame-out`` writes the breakdown as collapsed stacks
    for speedscope/FlameGraph.  Returns the process exit code.
    """
    out = out or sys.stdout
    from repro.obs.kernelprof import (
        format_kernelprof,
        kernel_collapsed_lines,
        kernel_profile,
        validate_kernelprof,
        write_kernelprof,
    )
    from repro.obs.profile import write_collapsed_lines

    scale = (ExperimentScale.paper() if args.scale == "paper"
             else ExperimentScale.smoke())
    numbers = [3, 4, 5, 6] if args.figure == "all" else [int(args.figure)]
    start = time.time()
    with kernel_profile(sample_every=args.sample_every,
                        memory=args.memory) as kp:
        for number in numbers:
            spec = figure_spec(number)
            print(f"=== Hotspots: figure {number} ({spec.title}) "
                  f"[{scale.name}]", file=out)
            run_figure(spec, scale)
    doc = kp.document()
    validate_kernelprof(doc)
    print(format_kernelprof(doc, top=args.top), file=out)
    if args.kernelprof_out:
        write_kernelprof(doc, args.kernelprof_out)
        _artifact(out, args.kernelprof_out, "repro-kernelprof/1",
                  f"{doc['events']} events profiled")
    if args.flame_out:
        lines = kernel_collapsed_lines(doc)
        write_collapsed_lines(args.flame_out, lines)
        _artifact(out, args.flame_out, "collapsed-stacks",
                  f"{len(lines)} stacks; open with speedscope "
                  f"or flamegraph.pl")
    print(f"  ({time.time() - start:.1f}s)", file=out)
    return 0


def _run_decisions(args, out=None):
    """``decisions``: replay figures with the scheduler decision ledger.

    Runs the selected figures serially with both telemetry and the
    decision ledger enabled, prints the per-policy decision table
    (placements, sizings, deferral depths, quantum-expiry vs
    block-yield ratios), and checks the linkage invariant on every
    run: each job's profiled ``queued`` bucket must decompose exactly
    over the super-scheduler deferral decisions that explain it.
    ``--decisions-out`` streams every run's ledger as consecutive
    ``repro-decisions/1`` segments; ``--perfetto-out`` exports the last
    cell's trace with decision instants on per-scheduler tracks.
    Returns the process exit code (2 when a linkage check fails).
    """
    out = out or sys.stdout
    from repro.obs import (
        DecisionsLog,
        check_decomposition,
        decision_table,
        format_decision_table,
        profile_run,
        queued_decomposition,
        write_perfetto,
    )

    scale = (ExperimentScale.paper() if args.scale == "paper"
             else ExperimentScale.smoke())
    numbers = [3, 4, 5, 6] if args.figure == "all" else [int(args.figure)]
    start = time.time()
    all_cells = []
    entries = []      # (figure, label, policy, DecisionLedger)
    tel_entries = []  # (figure, label, policy, Telemetry), same order
    for number in numbers:
        spec = figure_spec(number)
        print(f"=== Decisions: figure {number} ({spec.title}) "
              f"[{scale.name}]", file=out)
        sink, dsink = [], []
        cells = run_figure(spec, scale, telemetry_sink=sink,
                           decisions_sink=dsink)
        all_cells.extend(cells)
        tel_entries.extend((number, label, policy, tel)
                           for label, policy, tel in sink)
        entries.extend((number, label, policy, led)
                       for label, policy, led in dsink)
    print(format_decision_table(
        decision_table([(label, policy, led)
                        for _f, label, policy, led in entries])), file=out)
    # Linkage invariant: the ledger and the causal profiler agree on
    # where queued time went, run by run and to the last float.
    checked = queued_jobs = failures = 0
    for (figure, label, _p, led), (_f, _l, _p2, tel) in zip(entries,
                                                            tel_entries):
        # The shared recorder carries both the job.* lifecycle marks
        # and the ledger's decision records — the decomposition needs
        # both.
        decomp = queued_decomposition(led.recorder)
        try:
            check_decomposition(decomp, profile_run(tel))
        except ValueError as exc:
            failures += 1
            print(f"  LINKAGE FAILED figure {figure} cell {label}: {exc}",
                  file=out)
        checked += 1
        queued_jobs += len(decomp)
    print(f"linkage: queued-bucket decomposition exact on "
          f"{checked - failures}/{checked} runs "
          f"({queued_jobs} queued jobs)", file=out)
    if args.csv:
        with open(args.csv, "w") as fh:
            fh.write(grid_to_csv(all_cells))
        _artifact(out, args.csv, "csv", f"{len(all_cells)} grid cells")
    if args.decisions_out:
        log = DecisionsLog(args.decisions_out)
        try:
            for figure, label, policy, led in entries:
                log.write_segment(led, figure=figure, label=label,
                                  policy=policy)
        finally:
            log.close()
        total = sum(led.total for _f, _l, _p, led in entries)
        _artifact(out, args.decisions_out, "repro-decisions/1",
                  f"{len(entries)} segments, {total} decisions")
    if args.perfetto_out:
        figure, label, policy, tel = tel_entries[-1]
        n = write_perfetto(tel, args.perfetto_out)
        _artifact(out, args.perfetto_out, "chrome-trace",
                  f"{n} events incl. decision instants from cell "
                  f"{label} ({policy})")
    print(f"  ({time.time() - start:.1f}s)", file=out)
    return 2 if failures else 0


def _run_steady(args, out=None):
    """``steady``: open-system rate sweep with streaming statistics.

    Every cell runs ``run_open(collect_jobs=False)`` — O(1) memory in
    the job count — and reports the MSER-truncated mean response time
    with a batch-means 95% CI.  ``--steady-out`` streams each cell's
    windowed time series as consecutive ``repro-steady/1`` segments.
    Returns 1 when any cell's CI failed its soundness checks (warm-up
    not converged or macro-batches too autocorrelated), else 0.
    """
    out = out or sys.stdout
    from repro.experiments.steady import (
        DEFAULT_RHOS,
        POLICIES,
        format_steady_table,
        run_steady_sweep,
    )

    rhos = (tuple(float(r) for r in args.rho.split(","))
            if args.rho else DEFAULT_RHOS)
    policies = tuple(p.strip() for p in args.policies.split(",") if p.strip())
    for policy in policies:
        if policy not in POLICIES:
            raise SystemExit(f"unknown policy {policy!r}; choose from "
                             f"{sorted(POLICIES)}")
    log = None
    if args.steady_out:
        from repro.obs.steadylog import SteadyLog

        log = SteadyLog(args.steady_out)
    start = time.time()

    def progress(row):
        print(f"  {row['policy']:>8} rho={row['rho']:<5g} "
              f"{row['jobs']:>8d} jobs  "
              f"rt={row['steady_rt']:.3f}±{row['ci95']:.3f}s"
              f"{'' if row['sound'] else '  [UNSOUND]'}", file=out)

    print(f"=== Steady-state sweep: {args.arrival} arrivals, "
          f"{args.nodes} nodes, {args.duration:g}s per cell", file=out)
    try:
        rows = run_steady_sweep(
            rhos, policies, duration=args.duration, nodes=args.nodes,
            window=args.window, seed=args.seed, log=log,
            arrival=args.arrival, progress=progress,
            decisions=args.decisions,
        )
    finally:
        if log is not None:
            log.close()
    print(format_steady_table(rows), file=out)
    if args.steady_out:
        _artifact(out, args.steady_out, "repro-steady/1",
                  f"{len(rows)} cell segments")
    print(f"  ({time.time() - start:.1f}s)", file=out)
    unsound = [r for r in rows if not r["sound"]]
    if unsound:
        print(f"{len(unsound)} cell(s) with unsound CIs — lengthen "
              f"--duration for steady-state claims", file=out)
        return 1
    return 0


def _run_ablations(args, out=None):
    out = out or sys.stdout
    names = (sorted(ALL_ABLATIONS) if args.ablation == "all"
             else [args.ablation])
    for name in names:
        try:
            fn = ALL_ABLATIONS[name]
        except KeyError:
            raise SystemExit(
                f"unknown ablation {name!r}; choose from "
                f"{sorted(ALL_ABLATIONS)}"
            )
        start = time.time()
        rows, columns = fn()
        print(format_ablation(rows, columns, title=f"=== Ablation: {name}"),
              file=out)
        print(f"  ({time.time() - start:.1f}s)", file=out)


def _run_sensitivity(out=None):
    out = out or sys.stdout
    from repro.experiments.sensitivity import (
        fraction_preserving_finding,
        sensitivity_sweep,
    )

    start = time.time()
    rows, columns = sensitivity_sweep()
    print(format_ablation(rows, columns,
                          title="=== Calibration sensitivity "
                                "(ts/static @ 16L, matmul fixed)"),
          file=out)
    frac = fraction_preserving_finding(rows)
    print(f"finding preserved at {frac:.0%} of perturbed configurations",
          file=out)
    print(f"  ({time.time() - start:.1f}s)", file=out)


def _run_topology_table(out=None):
    out = out or sys.stdout
    from repro.topology import (
        compare_topologies,
        hypercube,
        linear_array,
        mesh,
        ring,
        torus,
    )

    topologies = [
        linear_array(range(16)), ring(range(16)), mesh(range(16)),
        hypercube(range(8)), torus(range(16)),
    ]
    rows = compare_topologies(topologies)
    columns = ["label", "links", "max_degree", "diameter", "avg_distance",
               "bisection"]
    print(format_ablation(rows, columns, title="=== Topology properties"),
          file=out)


def _run_validation(out=None, jobs=1):
    out = out or sys.stdout
    from repro.experiments.validation import all_checks_pass, validation_report

    rows, columns = validation_report(jobs=jobs)
    for row in rows:
        for key in ("simulated", "predicted", "rel_error", "tolerance"):
            row[key] = float(row[key])
    print(format_ablation(rows, columns,
                          title="=== Validation vs closed forms"), file=out)
    ok = all_checks_pass(rows)
    print("all checks passed" if ok else "SOME CHECKS FAILED", file=out)
    return ok


def main(argv=None):
    args = _parse_args(argv if argv is not None else sys.argv[1:])
    if args.command == "diff":
        return _run_diff(args)
    if args.command == "steady":
        return _run_steady(args)
    if args.command == "hotspots":
        return _run_hotspots(args)
    if args.command == "decisions":
        return _run_decisions(args)
    if args.validate:
        if not _run_validation(jobs=args.jobs):
            return 1
    if args.topologies:
        _run_topology_table()
    if args.figure:
        if _run_figures(args):
            return 1
    if args.ablation:
        _run_ablations(args)
    if args.sensitivity:
        _run_sensitivity()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
