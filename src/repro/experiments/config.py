"""Experiment grids and scaling.

A figure's grid is the cross product of partition sizes and topologies
from the paper (1, 2, 4, 8, 16 x L, R, M, H — no 16-node hypercube).
Full paper-scale runs take a few minutes; ``ExperimentScale.SMOKE``
shrinks problem sizes and the batch for CI-speed runs with the same
qualitative shape.
"""

from __future__ import annotations

from dataclasses import dataclass

DEFAULT_PARTITION_SIZES = (1, 2, 4, 8, 16)
DEFAULT_TOPOLOGIES = ("linear", "ring", "mesh", "hypercube")


@dataclass(frozen=True)
class ExperimentScale:
    """Problem-size scaling for an experiment run."""

    name: str
    num_small: int
    num_large: int
    matmul_small: int
    matmul_large: int
    sort_small: int
    sort_large: int
    partition_sizes: tuple = DEFAULT_PARTITION_SIZES
    topologies: tuple = DEFAULT_TOPOLOGIES

    @classmethod
    def paper(cls):
        """The paper's batch: 12 small + 4 large at reconstructed sizes."""
        return cls("paper", 12, 4, 55, 110, 6_000, 14_000)

    @classmethod
    def smoke(cls):
        """Reduced sizes for fast runs with the same qualitative shape."""
        return cls("smoke", 6, 2, 30, 60, 1_500, 3_500,
                   partition_sizes=(1, 4, 16),
                   topologies=("linear", "mesh"))

    def batch_kwargs(self, app):
        if app == "matmul":
            sizes = {"small_size": self.matmul_small,
                     "large_size": self.matmul_large}
        elif app == "sort":
            sizes = {"small_size": self.sort_small,
                     "large_size": self.sort_large}
        else:
            raise ValueError(f"unknown app {app!r}")
        return {"num_small": self.num_small, "num_large": self.num_large,
                **sizes}


@dataclass(frozen=True)
class FigureSpec:
    """One of the paper's evaluation figures."""

    number: int
    app: str
    architecture: str
    title: str

    @property
    def experiment_id(self):
        return f"E{self.number - 2}"  # Figure 3 -> E1, ... Figure 6 -> E4


_FIGURES = {
    3: FigureSpec(3, "matmul", "fixed",
                  "Mean response time, matrix multiplication, fixed "
                  "software architecture"),
    4: FigureSpec(4, "matmul", "adaptive",
                  "Mean response time, matrix multiplication, adaptive "
                  "software architecture"),
    5: FigureSpec(5, "sort", "fixed",
                  "Mean response time, sort, fixed software architecture"),
    6: FigureSpec(6, "sort", "adaptive",
                  "Mean response time, sort, adaptive software architecture"),
}


def figure_spec(number):
    """Spec for one of the paper's figures (3-6)."""
    try:
        return _FIGURES[number]
    except KeyError:
        raise ValueError(
            f"the paper's evaluation has Figures 3-6; got {number}"
        ) from None
