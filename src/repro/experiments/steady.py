"""Steady-state rate sweeps: the engine behind ``repro-experiments steady``.

The paper's figures are closed 16-job batches; this sweep drives the
machine as an *open* system — a lazy Poisson (or bursty MMPP) stream of
fork-join jobs with exponential service demands — across a grid of
offered loads ρ and scheduling policies, using the streaming
observability layer (:mod:`repro.obs.streaming`) end to end:

- every cell runs ``run_open(collect_jobs=False)``, so memory stays
  O(1) no matter how many jobs ``--duration`` × rate implies;
- each cell reports the MSER-truncated mean response time with a
  batch-means 95% CI and its soundness flags;
- with ``--steady-out`` the windowed time series of every cell is
  emitted as consecutive ``repro-steady/1`` JSONL segments.

Static space-sharing with single-node partitions under this workload is
an M/M/c queue, so the table carries the Erlang-C prediction alongside
— the same closed-form anchor ``examples/open_system.py`` validates
against — which makes the sweep self-checking at a glance.

This grid is the engine for the F8 variance-crossover figure family:
sweep ``--arrival bursty`` (or raise demand variance) against the same
rates and watch the static-vs-time-sharing ordering flip.
"""

from __future__ import annotations

import io

from repro.analysis import mmc_mean_response
from repro.core import (
    MulticomputerSystem,
    StaticSpaceSharing,
    SystemConfig,
    TimeSharing,
)
from repro.workload import JobSpec, SyntheticForkJoin, bursty_arrivals, \
    poisson_arrivals

#: Offered loads swept by default (fraction of machine capacity).
DEFAULT_RHOS = (0.3, 0.5, 0.7, 0.85)

#: Mean service demand in operations (0.5 s at the calibrated
#: 3.3e5 ops/s single-node speed — the open_system example's setting).
DEFAULT_MEAN_OPS = 1.65e5

#: Policies the sweep knows how to build.
POLICIES = {
    "static": lambda: StaticSpaceSharing(1),
    "ts": TimeSharing,
}


def _spec_factory(mean_ops):
    def factory(rng):
        ops = max(float(rng.exponential(mean_ops)), 1.0)
        return JobSpec(
            SyntheticForkJoin(ops, architecture="adaptive",
                              message_bytes=64),
            "exp",
        )

    return factory


def steady_cell(policy_kind, rate, duration, *, nodes=4, topology="mesh",
                mean_ops=DEFAULT_MEAN_OPS, seed=7, window=None, log=None,
                decisions=False):
    """Run one open-system cell; returns an ``OpenRunResult``.

    ``window`` defaults to 2% of ``duration`` so every cell emits ~50
    windows regardless of scale; pass an explicit width to align
    windows across cells of different durations.  ``decisions=True``
    enables the scheduling decision ledger: each emitted window then
    carries per-window decision/deferral counts (O(1) memory — the sink
    snapshots the ledger's cumulative totals).
    """
    import numpy as np

    from repro.obs.streaming import SteadyStateSink

    try:
        build = POLICIES[policy_kind]
    except KeyError:
        raise ValueError(
            f"unknown policy {policy_kind!r}; choose from {sorted(POLICIES)}"
        ) from None
    rng = np.random.default_rng(seed)
    factory = _spec_factory(mean_ops)
    arrivals = poisson_arrivals(rate, duration, factory, rng)
    sink = SteadyStateSink(window=window or duration / 50.0, log=log)
    config = SystemConfig(num_nodes=nodes, topology=topology,
                          decisions=decisions)
    system = MulticomputerSystem(config, build())
    return system.run_open(
        arrivals, collect_jobs=False, sink=sink,
        label=f"{policy_kind}@{rate:g}/s",
    )


def steady_cell_bursty(policy_kind, rate, duration, *, nodes=4,
                       topology="mesh", mean_ops=DEFAULT_MEAN_OPS, seed=7,
                       window=None, log=None, mean_on=2.0, mean_off=2.0,
                       decisions=False):
    """Bursty (MMPP on/off) variant of :func:`steady_cell`.

    ``rate`` is the *offered* long-run rate; the in-burst peak rate is
    scaled up by ``(mean_on + mean_off) / mean_on`` so the two arrival
    disciplines are comparable at equal offered load.
    """
    import numpy as np

    from repro.obs.streaming import SteadyStateSink

    build = POLICIES[policy_kind]
    rng = np.random.default_rng(seed)
    factory = _spec_factory(mean_ops)
    peak = rate * (mean_on + mean_off) / mean_on
    arrivals = bursty_arrivals(peak, duration, factory, rng,
                               mean_on=mean_on, mean_off=mean_off)
    sink = SteadyStateSink(window=window or duration / 50.0, log=log)
    config = SystemConfig(num_nodes=nodes, topology=topology,
                          decisions=decisions)
    system = MulticomputerSystem(config, build())
    return system.run_open(
        arrivals, collect_jobs=False, sink=sink,
        label=f"{policy_kind}@{rate:g}/s bursty",
    )


def run_steady_sweep(rhos=DEFAULT_RHOS, policies=("static", "ts"), *,
                     duration=200.0, nodes=4, topology="mesh",
                     mean_ops=DEFAULT_MEAN_OPS, seed=7, window=None,
                     log=None, arrival="poisson", progress=None,
                     decisions=False):
    """Sweep offered load × policy; returns a list of row dicts.

    Each row carries the cell's counts, the streaming mean, the
    warm-up-truncated steady-state estimate with its CI halfwidth and
    soundness, tail quantiles from the sketch, and — where the M/M/c
    model applies — the Erlang-C prediction for reference.
    """
    service_rate = 3.3e5 / mean_ops
    rows = []
    for policy in policies:
        for rho in rhos:
            rate = rho * nodes * service_rate
            if arrival == "bursty":
                result = steady_cell_bursty(
                    policy, rate, duration, nodes=nodes, topology=topology,
                    mean_ops=mean_ops, seed=seed, window=window, log=log,
                    decisions=decisions)
            elif arrival == "poisson":
                result = steady_cell(
                    policy, rate, duration, nodes=nodes, topology=topology,
                    mean_ops=mean_ops, seed=seed, window=window, log=log,
                    decisions=decisions)
            else:
                raise ValueError(
                    f"unknown arrival discipline {arrival!r}; choose "
                    f"'poisson' or 'bursty'"
                )
            steady = result.steady
            row = {
                "policy": policy,
                "rho": rho,
                "rate": rate,
                "jobs": result.jobs_completed,
                "mean_rt": result.mean_response_time,
                "steady_rt": steady["mean"],
                "ci95": steady["ci95"],
                "p50": result.percentile_response(50),
                "p99": result.percentile_response(99),
                "warmup_jobs": steady["warmup_jobs"],
                "sound": steady["sound"],
                "util": result.snapshot.mean_cpu_utilization,
            }
            if policy == "static" and arrival == "poisson":
                row["mmc_rt"] = mmc_mean_response(rate, service_rate, nodes)
            rows.append(row)
            if progress is not None:
                progress(row)
    return rows


def format_steady_table(rows, title="=== Steady-state sweep"):
    """Aligned per-policy table: ρ, rate, warm-up cut, mean ± CI, tails."""
    out = io.StringIO()
    out.write(title + "\n")
    header = (f"{'policy':>8}{'rho':>7}{'rate/s':>9}{'jobs':>9}"
              f"{'warmup':>8}{'rt mean':>10}{'steady rt ±95% CI':>21}"
              f"{'p50':>9}{'p99':>9}{'M/M/c':>9}{'util':>7}  sound\n")
    out.write(header)
    out.write("-" * (len(header) + 1) + "\n")
    last_policy = None
    for row in rows:
        if last_policy is not None and row["policy"] != last_policy:
            out.write("\n")
        last_policy = row["policy"]
        mmc = (f"{row['mmc_rt']:9.3f}" if "mmc_rt" in row
               else f"{'—':>9}")
        ci = f"{row['steady_rt']:9.3f} ± {row['ci95']:7.3f}"
        out.write(
            f"{row['policy']:>8}{row['rho']:7.2f}{row['rate']:9.2f}"
            f"{row['jobs']:9d}{row['warmup_jobs']:8d}"
            f"{row['mean_rt']:10.3f}{ci:>21}"
            f"{row['p50']:9.3f}{row['p99']:9.3f}{mmc}"
            f"{row['util']:7.2f}  {'yes' if row['sound'] else 'NO'}\n"
        )
    return out.getvalue()
