"""Calibration sensitivity: how robust is the headline result?

The reproduction's claim is a *shape* — static space-sharing beats
time-sharing for the paper's batch.  A shape that only holds at one
magic set of constants would be worthless, so this module perturbs each
calibrated hardware constant across a range and re-measures the
headline ratio (time-sharing / static mean response at one 16-node
partition, matmul fixed).  Ratios above 1.0 mean the finding survives.
"""

from __future__ import annotations

import dataclasses

from repro.core import MulticomputerSystem, SystemConfig, TimeSharing
from repro.experiments.runner import run_static_averaged
from repro.transputer import TransputerConfig
from repro.workload import standard_batch

#: Knob -> multiplicative perturbations applied to the default value.
DEFAULT_KNOBS = {
    "cpu_ops_per_second": (0.5, 2.0),
    "link_bandwidth": (0.5, 2.0),
    "copy_bytes_per_second": (0.5, 2.0),
    "hop_software_overhead": (0.5, 2.0),
    "context_switch_overhead": (0.0, 4.0),
    "message_overhead": (0.5, 2.0),
    "scheduler_quantum": (0.2, 5.0),
}


def headline_ratio(transputer, topology="linear", architecture="fixed"):
    """TS/static mean-response ratio at one 16-node partition."""
    config = SystemConfig(num_nodes=16, topology=topology,
                          transputer=transputer)
    batch = standard_batch("matmul", architecture=architecture)
    static_rt, _, _ = run_static_averaged(config, 16, batch)
    ts = MulticomputerSystem(config, TimeSharing()).run_batch(batch)
    return ts.mean_response_time / static_rt


def sensitivity_sweep(knobs=None, topology="linear", architecture="fixed"):
    """Perturb each knob independently; return rows of headline ratios.

    Each row holds the knob name, the factor applied, the perturbed
    value, and the resulting TS/static ratio.  The baseline row uses the
    default calibration.
    """
    knobs = dict(knobs if knobs is not None else DEFAULT_KNOBS)
    rows = [{
        "knob": "(baseline)",
        "factor": 1.0,
        "value": "-",
        "ts/static": headline_ratio(TransputerConfig(), topology,
                                    architecture),
    }]
    defaults = TransputerConfig()
    for knob, factors in knobs.items():
        base = getattr(defaults, knob)
        for factor in factors:
            value = base * factor
            transputer = dataclasses.replace(defaults, **{knob: value})
            try:
                transputer.validate()
            except ValueError:
                continue
            rows.append({
                "knob": knob,
                "factor": factor,
                "value": f"{value:.3g}",
                "ts/static": headline_ratio(transputer, topology,
                                            architecture),
            })
    return rows, ["knob", "factor", "value", "ts/static"]


def fraction_preserving_finding(rows):
    """Fraction of sweep points where static still wins (ratio > 1)."""
    ratios = [r["ts/static"] for r in rows]
    if not ratios:
        return 0.0
    return sum(1 for r in ratios if r > 1.0) / len(ratios)
