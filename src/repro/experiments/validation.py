"""Validation report: simulator vs closed-form oracles.

Runs the battery of limiting-regime checks (single-server FCFS and
processor-sharing batches, work conservation, M/M/c open arrivals,
the per-job matmul model) and reports simulated vs predicted values
with relative errors — a machine-checkable certificate that the
simulator's queueing and timing skeleton is sound, independent of the
Transputer calibration.

Use :func:`validation_report` programmatically or
``python -m repro.experiments --validate`` from the shell.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import (
    batch_fcfs_mean_response,
    batch_ps_mean_response,
    matmul_job_time,
    mmc_mean_response,
)
from repro.core import (
    MulticomputerSystem,
    StaticSpaceSharing,
    SystemConfig,
    TimeSharing,
)
from repro.transputer import TransputerConfig
from repro.workload import (
    BatchWorkload,
    JobSpec,
    MatMulApplication,
    SyntheticForkJoin,
    poisson_arrivals,
)


def _ideal_transputer(**overrides):
    params = dict(
        cpu_ops_per_second=1.0e6,
        context_switch_overhead=0.0,
        link_bandwidth=1.0e12,
        link_startup=0.0,
        hop_software_overhead=0.0,
        copy_bytes_per_second=1.0e15,
        message_overhead=0.0,
    )
    params.update(overrides)
    return TransputerConfig(**params)


def _row(check, simulated, predicted, tolerance):
    error = abs(simulated - predicted) / predicted if predicted else 0.0
    return {
        "check": check,
        "simulated": simulated,
        "predicted": predicted,
        "rel_error": error,
        "tolerance": tolerance,
        "ok": "yes" if error <= tolerance else "NO",
    }


def _reference_apps():
    return [MatMulApplication(n, architecture="adaptive")
            for n in (16, 24, 32)]


def _check_fcfs_batch():
    """Single-node FCFS batch == prefix-sum formula."""
    apps = _reference_apps()
    demands = [(a.total_ops(1) + a.n ** 2) / 1e6 for a in apps]
    cfg = SystemConfig(num_nodes=1, topology="linear",
                       transputer=_ideal_transputer())
    result = MulticomputerSystem(cfg, StaticSpaceSharing(1)).run_batch(
        BatchWorkload([JobSpec(a, "x") for a in apps])
    )
    return _row("single-node FCFS batch",
                result.mean_response_time,
                batch_fcfs_mean_response(demands), 0.01)


def _check_ps_batch():
    """Single-node processor-sharing batch == staircase formula."""
    apps = _reference_apps()
    demands = [(a.total_ops(1) + a.n ** 2) / 1e6 for a in apps]
    cfg = SystemConfig(num_nodes=1, topology="linear",
                       transputer=_ideal_transputer(scheduler_quantum=1e-3))
    result = MulticomputerSystem(cfg, TimeSharing()).run_batch(
        BatchWorkload([JobSpec(a, "x") for a in apps])
    )
    return _row("single-node PS batch",
                result.mean_response_time,
                batch_ps_mean_response(demands), 0.05)


def _check_work_conservation():
    """Work conservation: makespan == total work / p, zero comm."""
    app = MatMulApplication(64, architecture="adaptive")
    cfg = SystemConfig(num_nodes=4, topology="linear",
                       transputer=_ideal_transputer())
    result = MulticomputerSystem(cfg, StaticSpaceSharing(4)).run_batch(
        BatchWorkload([JobSpec(app, "solo")])
    )
    return _row("work conservation (1 job, 4 cpus)",
                result.makespan,
                app.total_ops(4) / 1e6 / 4, 0.1)


def _mm4_factory(r):
    ops = max(float(r.exponential(2.0e5)), 1.0)
    return JobSpec(SyntheticForkJoin(ops, architecture="adaptive",
                                     message_bytes=0), "exp")


def _check_open_mm4():
    """Open arrivals on 4 single-node partitions == M/M/4 (Erlang C)."""
    rng = np.random.default_rng(11)
    mean_ops = 2.0e5
    arrival_rate = 10.0
    arrivals = poisson_arrivals(arrival_rate, 150.0, _mm4_factory, rng)
    cfg = SystemConfig(num_nodes=4, topology="linear",
                       transputer=_ideal_transputer())
    result = MulticomputerSystem(cfg, StaticSpaceSharing(1)).run_open(
        arrivals
    )
    return _row("open M/M/4 mean response",
                result.mean_response_time,
                mmc_mean_response(arrival_rate, 1e6 / mean_ops, 4),
                0.25)


def _check_matmul_model():
    """Calibrated single-job model tracks the calibrated simulator."""
    config = TransputerConfig()
    n, p = 96, 4
    cfg = SystemConfig(num_nodes=p, topology="ring", transputer=config)
    app = MatMulApplication(n, architecture="adaptive")
    result = MulticomputerSystem(cfg, StaticSpaceSharing(p)).run_batch(
        BatchWorkload([JobSpec(app, "solo")])
    )
    return _row("matmul job-time model (p=4, calibrated)",
                result.makespan,
                matmul_job_time(n, p, config), 0.35)


#: The oracle checks, in report order.  Each entry is an independent
#: module-level function (picklable), so the battery can fan out across
#: worker processes; rows are always reduced in this order.
CHECKS = (
    _check_fcfs_batch,
    _check_ps_batch,
    _check_work_conservation,
    _check_open_mm4,
    _check_matmul_model,
)

COLUMNS = ["check", "simulated", "predicted", "rel_error", "tolerance",
           "ok"]


def validation_report(jobs=1):
    """Run all oracle checks; returns (rows, columns).

    ``jobs`` > 1 farms the independent checks out over a process pool
    (``0`` = one worker per core); rows come back in :data:`CHECKS`
    order regardless, so the report is identical to a serial run.
    """
    from repro.experiments.parallel import resolve_jobs

    jobs = resolve_jobs(jobs)
    if jobs > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(jobs, len(CHECKS))) as pool:
            futures = [pool.submit(check) for check in CHECKS]
            rows = [f.result() for f in futures]
    else:
        rows = [check() for check in CHECKS]
    return rows, list(COLUMNS)


def all_checks_pass(rows):
    return all(row["ok"] == "yes" for row in rows)
