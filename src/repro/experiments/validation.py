"""Validation report: simulator vs closed-form oracles.

Runs the battery of limiting-regime checks (single-server FCFS and
processor-sharing batches, work conservation, M/M/c open arrivals,
the per-job matmul model) and reports simulated vs predicted values
with relative errors — a machine-checkable certificate that the
simulator's queueing and timing skeleton is sound, independent of the
Transputer calibration.

Use :func:`validation_report` programmatically or
``python -m repro.experiments --validate`` from the shell.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import (
    batch_fcfs_mean_response,
    batch_ps_mean_response,
    matmul_job_time,
    mmc_mean_response,
)
from repro.core import (
    MulticomputerSystem,
    StaticSpaceSharing,
    SystemConfig,
    TimeSharing,
)
from repro.transputer import TransputerConfig
from repro.workload import (
    BatchWorkload,
    JobSpec,
    MatMulApplication,
    SyntheticForkJoin,
    poisson_arrivals,
)


def _ideal_transputer(**overrides):
    params = dict(
        cpu_ops_per_second=1.0e6,
        context_switch_overhead=0.0,
        link_bandwidth=1.0e12,
        link_startup=0.0,
        hop_software_overhead=0.0,
        copy_bytes_per_second=1.0e15,
        message_overhead=0.0,
    )
    params.update(overrides)
    return TransputerConfig(**params)


def _row(check, simulated, predicted, tolerance):
    error = abs(simulated - predicted) / predicted if predicted else 0.0
    return {
        "check": check,
        "simulated": simulated,
        "predicted": predicted,
        "rel_error": error,
        "tolerance": tolerance,
        "ok": "yes" if error <= tolerance else "NO",
    }


def validation_report():
    """Run all oracle checks; returns (rows, columns)."""
    rows = []

    # 1. Single-node FCFS batch == prefix-sum formula.
    apps = [MatMulApplication(n, architecture="adaptive")
            for n in (16, 24, 32)]
    demands = [(a.total_ops(1) + a.n ** 2) / 1e6 for a in apps]
    cfg = SystemConfig(num_nodes=1, topology="linear",
                       transputer=_ideal_transputer())
    result = MulticomputerSystem(cfg, StaticSpaceSharing(1)).run_batch(
        BatchWorkload([JobSpec(a, "x") for a in apps])
    )
    rows.append(_row("single-node FCFS batch",
                     result.mean_response_time,
                     batch_fcfs_mean_response(demands), 0.01))

    # 2. Single-node processor-sharing batch == staircase formula.
    cfg = SystemConfig(num_nodes=1, topology="linear",
                       transputer=_ideal_transputer(scheduler_quantum=1e-3))
    result = MulticomputerSystem(cfg, TimeSharing()).run_batch(
        BatchWorkload([JobSpec(a, "x") for a in apps])
    )
    rows.append(_row("single-node PS batch",
                     result.mean_response_time,
                     batch_ps_mean_response(demands), 0.05))

    # 3. Work conservation: makespan == total work / p, zero comm.
    app = MatMulApplication(64, architecture="adaptive")
    cfg = SystemConfig(num_nodes=4, topology="linear",
                       transputer=_ideal_transputer())
    result = MulticomputerSystem(cfg, StaticSpaceSharing(4)).run_batch(
        BatchWorkload([JobSpec(app, "solo")])
    )
    rows.append(_row("work conservation (1 job, 4 cpus)",
                     result.makespan,
                     app.total_ops(4) / 1e6 / 4, 0.1))

    # 4. Open arrivals on 4 single-node partitions == M/M/4 (Erlang C).
    rng = np.random.default_rng(11)
    mean_ops = 2.0e5
    arrival_rate = 10.0

    def factory(r):
        ops = max(float(r.exponential(mean_ops)), 1.0)
        return JobSpec(SyntheticForkJoin(ops, architecture="adaptive",
                                         message_bytes=0), "exp")

    arrivals = poisson_arrivals(arrival_rate, 150.0, factory, rng)
    cfg = SystemConfig(num_nodes=4, topology="linear",
                       transputer=_ideal_transputer())
    result = MulticomputerSystem(cfg, StaticSpaceSharing(1)).run_open(
        arrivals
    )
    rows.append(_row("open M/M/4 mean response",
                     result.mean_response_time,
                     mmc_mean_response(arrival_rate, 1e6 / mean_ops, 4),
                     0.25))

    # 5. Calibrated single-job model tracks the calibrated simulator.
    config = TransputerConfig()
    n, p = 96, 4
    cfg = SystemConfig(num_nodes=p, topology="ring", transputer=config)
    app = MatMulApplication(n, architecture="adaptive")
    result = MulticomputerSystem(cfg, StaticSpaceSharing(p)).run_batch(
        BatchWorkload([JobSpec(app, "solo")])
    )
    rows.append(_row("matmul job-time model (p=4, calibrated)",
                     result.makespan,
                     matmul_job_time(n, p, config), 0.35))

    columns = ["check", "simulated", "predicted", "rel_error", "tolerance",
               "ok"]
    return rows, columns


def all_checks_pass(rows):
    return all(row["ok"] == "yes" for row in rows)
