"""Grid runner: one cell = (policy family, partition size, topology).

For every cell the runner reports the paper's metric — mean batch
response time — with the static policy fairly averaged over its best
(small-jobs-first) and worst (large-jobs-first) FCFS orderings, exactly
as Section 5.1 prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import (
    HybridPolicy,
    MulticomputerSystem,
    StaticSpaceSharing,
    SystemConfig,
    TimeSharing,
)
from repro.workload import standard_batch


@dataclass
class GridCell:
    """Result of one grid point."""

    figure: int
    app: str
    architecture: str
    partition_size: int
    topology: str
    policy: str
    #: The paper label, e.g. "8L".
    label: str
    mean_response_time: float
    makespan: float
    #: Aggregate waiting on memory (job + mailbox regions), seconds.
    memory_wait: float
    #: Mean CPU utilisation over the run.
    cpu_utilization: float

    def row(self):
        return (self.label, self.policy, self.mean_response_time)


def _policy_for(kind, partition_size, num_nodes):
    if kind == "static":
        return StaticSpaceSharing(partition_size)
    if kind == "timesharing":
        if partition_size == num_nodes:
            return TimeSharing()
        return HybridPolicy(partition_size)
    raise ValueError(f"unknown policy family {kind!r}")


def run_static_averaged(config, partition_size, batch, telemetry_sink=None,
                        decisions_sink=None):
    """Static policy: average of best and worst FCFS orderings.

    Returns (mean_response_time, best_result, worst_result), matching
    Section 5.1's fairness rule for comparing against time-sharing.
    ``telemetry_sink``, if given, receives the instrumented systems'
    :class:`~repro.obs.Telemetry` objects (requires
    ``config.telemetry``); ``decisions_sink`` likewise receives their
    :class:`~repro.obs.DecisionLedger` objects (requires
    ``config.decisions``).
    """
    best_sys = MulticomputerSystem(config, StaticSpaceSharing(partition_size))
    best = best_sys.run_batch(batch.ordered("best"), label="static:best")
    worst_sys = MulticomputerSystem(config, StaticSpaceSharing(partition_size))
    worst = worst_sys.run_batch(batch.ordered("worst"), label="static:worst")
    for order, system in (("best", best_sys), ("worst", worst_sys)):
        if telemetry_sink is not None and system.telemetry is not None:
            telemetry_sink.append(
                (f"static:{order}", "static", system.telemetry)
            )
        if decisions_sink is not None and system.decisions is not None:
            decisions_sink.append(
                (f"static:{order}", "static", system.decisions)
            )
    mean = (best.mean_response_time + worst.mean_response_time) / 2.0
    return mean, best, worst


def _snapshot_metrics(snapshot):
    """(memory_wait, cpu_utilization) of one run's system snapshot."""
    return (snapshot.memory_wait_time + snapshot.mailbox_wait_time,
            snapshot.mean_cpu_utilization)


def averaged_static_metrics(first, second):
    """Symmetric best/worst average of a static cell's reported metrics.

    Returns ``(mean_response_time, makespan, memory_wait,
    cpu_utilization)``; every component is the arithmetic mean of the
    two orderings' values, so the result is invariant under swapping
    the best/worst labels.
    """
    mw_a, cpu_a = _snapshot_metrics(first.snapshot)
    mw_b, cpu_b = _snapshot_metrics(second.snapshot)
    return (
        (first.mean_response_time + second.mean_response_time) / 2.0,
        (first.makespan + second.makespan) / 2.0,
        (mw_a + mw_b) / 2.0,
        (cpu_a + cpu_b) / 2.0,
    )


def run_cell(figure, app, architecture, partition_size, topology,
             policy_kind, scale, transputer=None, system_overrides=None,
             telemetry_sink=None, decisions_sink=None):
    """Run one grid cell and return a :class:`GridCell`.

    ``telemetry_sink``, if given, is a list to which the cell's run is
    added as ``(cell_label, policy, Telemetry)`` — telemetry is enabled
    on the run automatically.  ``decisions_sink`` works the same way
    for ``(cell_label, policy, DecisionLedger)`` entries, enabling the
    decision ledger on the run.
    """
    kwargs = {"num_nodes": 16, "topology": topology}
    kwargs.update(system_overrides or {})
    if telemetry_sink is not None:
        kwargs.setdefault("telemetry", True)
    if decisions_sink is not None:
        kwargs.setdefault("decisions", True)
    if transputer is not None:
        kwargs["transputer"] = transputer
    config = SystemConfig(**kwargs)
    batch = standard_batch(app, architecture=architecture,
                           **scale.batch_kwargs(app))
    label = f"{partition_size}{topology[0].upper()}"

    cell_sink = [] if telemetry_sink is not None else None
    cell_decisions = [] if decisions_sink is not None else None
    if policy_kind == "static":
        mean, best, worst = run_static_averaged(
            config, partition_size, batch,
            telemetry_sink=cell_sink, decisions_sink=cell_decisions,
        )
        mean, makespan, memory_wait, cpu_util = averaged_static_metrics(
            best, worst
        )
    else:
        policy = _policy_for(policy_kind, partition_size, config.num_nodes)
        system = MulticomputerSystem(config, policy)
        result = system.run_batch(batch)
        if cell_sink is not None and system.telemetry is not None:
            cell_sink.append((policy_kind, policy_kind, system.telemetry))
        if cell_decisions is not None and system.decisions is not None:
            cell_decisions.append(
                (policy_kind, policy_kind, system.decisions))
        mean = result.mean_response_time
        makespan = result.makespan
        memory_wait, cpu_util = _snapshot_metrics(result.snapshot)
    if telemetry_sink is not None:
        for sub_label, _, tel in cell_sink:
            telemetry_sink.append((f"{label}:{sub_label}", policy_kind, tel))
    if decisions_sink is not None:
        for sub_label, _, led in cell_decisions:
            decisions_sink.append((f"{label}:{sub_label}", policy_kind, led))

    return GridCell(
        figure=figure,
        app=app,
        architecture=architecture,
        partition_size=partition_size,
        topology=topology,
        policy=policy_kind,
        label=label,
        mean_response_time=mean,
        makespan=makespan,
        memory_wait=memory_wait,
        cpu_utilization=cpu_util,
    )


def enumerate_cells(spec, scale):
    """The figure's grid as an explicit, ordered list of cell kwargs.

    Each entry is a dict of :func:`run_cell`'s identifying arguments
    (figure/app/architecture/partition_size/topology/policy_kind).
    Hypercube is skipped at 16 nodes (one transputer link is reserved
    for the host), and cells with the same partition size but different
    topology are identical at p = 1 (no links), so p = 1 appears once
    under the first topology.  Both the serial and the parallel runner
    iterate this list, in this order.
    """
    tasks = []
    for p in scale.partition_sizes:
        topologies = scale.topologies if p > 1 else scale.topologies[:1]
        for topo in topologies:
            if topo == "hypercube" and p >= 16:
                continue  # not configurable on the real machine
            for policy_kind in ("static", "timesharing"):
                tasks.append({
                    "figure": spec.number,
                    "app": spec.app,
                    "architecture": spec.architecture,
                    "partition_size": p,
                    "topology": topo,
                    "policy_kind": policy_kind,
                })
    return tasks


def run_figure(spec, scale, transputer=None, system_overrides=None,
               progress=None, telemetry_sink=None, observer=None,
               decisions_sink=None):
    """Regenerate one of the paper's figures as a list of GridCells.

    The paper's plot has a static and a time-sharing/hybrid series over
    the partition-size x topology grid (see :func:`enumerate_cells` for
    the exact cell list).  For multi-core execution of the same grid
    see :func:`repro.experiments.parallel.run_figure_parallel`.

    ``observer`` is an optional
    :class:`repro.obs.sweeplog.SweepObserver` receiving per-cell
    progress callbacks (host wall-clock, events/sec); with the default
    ``None`` no timing code runs at all.
    """
    import time

    tasks = enumerate_cells(spec, scale)
    cells = []
    if observer is not None:
        observer.sweep_started(len(tasks), jobs=1)
    try:
        for index, task in enumerate(tasks):
            sink_mark = (len(telemetry_sink)
                         if telemetry_sink is not None else 0)
            t0 = time.perf_counter() if observer is not None else 0.0
            cell = run_cell(
                scale=scale, transputer=transputer,
                system_overrides=system_overrides,
                telemetry_sink=telemetry_sink,
                decisions_sink=decisions_sink, **task,
            )
            cells.append(cell)
            if observer is not None:
                wall = time.perf_counter() - t0
                eps = None
                if telemetry_sink is not None:
                    events = sum(
                        len(tel.recorder) + tel.recorder.dropped
                        for _l, _p, tel in telemetry_sink[sink_mark:]
                    )
                    eps = events / wall if wall > 0 else None
                observer.cell_finished(index, task, wall_s=wall,
                                       events_per_sec=eps)
            if progress is not None:
                progress(cell)
    finally:
        if observer is not None:
            observer.sweep_finished()
    return cells
