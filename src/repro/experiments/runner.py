"""Grid runner: one cell = (policy family, partition size, topology).

For every cell the runner reports the paper's metric — mean batch
response time — with the static policy fairly averaged over its best
(small-jobs-first) and worst (large-jobs-first) FCFS orderings, exactly
as Section 5.1 prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import (
    HybridPolicy,
    MulticomputerSystem,
    StaticSpaceSharing,
    SystemConfig,
    TimeSharing,
)
from repro.workload import standard_batch


@dataclass
class GridCell:
    """Result of one grid point."""

    figure: int
    app: str
    architecture: str
    partition_size: int
    topology: str
    policy: str
    #: The paper label, e.g. "8L".
    label: str
    mean_response_time: float
    makespan: float
    #: Aggregate waiting on memory (job + mailbox regions), seconds.
    memory_wait: float
    #: Mean CPU utilisation over the run.
    cpu_utilization: float

    def row(self):
        return (self.label, self.policy, self.mean_response_time)


def _policy_for(kind, partition_size, num_nodes):
    if kind == "static":
        return StaticSpaceSharing(partition_size)
    if kind == "timesharing":
        if partition_size == num_nodes:
            return TimeSharing()
        return HybridPolicy(partition_size)
    raise ValueError(f"unknown policy family {kind!r}")


def run_static_averaged(config, partition_size, batch):
    """Static policy: average of best and worst FCFS orderings.

    Returns (mean_response_time, best_result, worst_result), matching
    Section 5.1's fairness rule for comparing against time-sharing.
    """
    best = MulticomputerSystem(
        config, StaticSpaceSharing(partition_size)
    ).run_batch(batch.ordered("best"), label="static:best")
    worst = MulticomputerSystem(
        config, StaticSpaceSharing(partition_size)
    ).run_batch(batch.ordered("worst"), label="static:worst")
    mean = (best.mean_response_time + worst.mean_response_time) / 2.0
    return mean, best, worst


def run_cell(figure, app, architecture, partition_size, topology,
             policy_kind, scale, transputer=None, system_overrides=None):
    """Run one grid cell and return a :class:`GridCell`."""
    kwargs = {"num_nodes": 16, "topology": topology}
    kwargs.update(system_overrides or {})
    if transputer is not None:
        kwargs["transputer"] = transputer
    config = SystemConfig(**kwargs)
    batch = standard_batch(app, architecture=architecture,
                           **scale.batch_kwargs(app))
    label = f"{partition_size}{topology[0].upper()}"

    if policy_kind == "static":
        mean, best, worst = run_static_averaged(config, partition_size, batch)
        snap = best.snapshot
        makespan = (best.makespan + worst.makespan) / 2.0
    else:
        policy = _policy_for(policy_kind, partition_size, config.num_nodes)
        result = MulticomputerSystem(config, policy).run_batch(batch)
        mean = result.mean_response_time
        snap = result.snapshot
        makespan = result.makespan

    return GridCell(
        figure=figure,
        app=app,
        architecture=architecture,
        partition_size=partition_size,
        topology=topology,
        policy=policy_kind,
        label=label,
        mean_response_time=mean,
        makespan=makespan,
        memory_wait=snap.memory_wait_time + snap.mailbox_wait_time,
        cpu_utilization=snap.mean_cpu_utilization,
    )


def run_figure(spec, scale, transputer=None, system_overrides=None,
               progress=None):
    """Regenerate one of the paper's figures as a list of GridCells.

    The paper's plot has a static and a time-sharing/hybrid series over
    the partition-size x topology grid; hypercube is skipped at 16
    nodes (one transputer link is reserved for the host).  Cells with
    the same partition size but different topology are identical at
    p = 1 (no links), so p = 1 runs once under the first topology.
    """
    cells = []
    for p in scale.partition_sizes:
        topologies = scale.topologies if p > 1 else scale.topologies[:1]
        for topo in topologies:
            if topo == "hypercube" and p >= 16:
                continue  # not configurable on the real machine
            for policy_kind in ("static", "timesharing"):
                cell = run_cell(
                    spec.number, spec.app, spec.architecture, p, topo,
                    policy_kind, scale, transputer=transputer,
                    system_overrides=system_overrides,
                )
                cells.append(cell)
                if progress is not None:
                    progress(cell)
    return cells
