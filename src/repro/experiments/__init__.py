"""Experiment harness: regenerate every figure in the paper's evaluation.

The evaluation section of the paper contains four figures (mean batch
response time versus partition size x topology):

- Figure 3 — matrix multiplication, fixed software architecture (E1)
- Figure 4 — matrix multiplication, adaptive architecture (E2)
- Figure 5 — sort, fixed architecture (E3)
- Figure 6 — sort, adaptive architecture (E4)

plus several quantitative claims reproduced here as ablations:

- E5 variance crossover (Section 5.2 / companion TR): high service-
  demand variance flips the static-vs-time-sharing ranking;
- E6 wormhole routing (Section 5.2 discussion): removes intermediate
  buffering and most topology sensitivity;
- E7 memory-size sensitivity: the contention mechanism behind the
  time-sharing degradation;
- E8 RR-process unfairness (Section 2.2): fixed per-process quanta give
  process-rich jobs an outsized share;
- E9 quantum-size sensitivity (Section 3.1 hardware mechanism).

Use :func:`run_figure` / :func:`run_ablation` from Python, or the CLI::

    python -m repro.experiments --figure 3
    python -m repro.experiments --ablation variance
"""

from repro.experiments.config import (
    DEFAULT_PARTITION_SIZES,
    DEFAULT_TOPOLOGIES,
    ExperimentScale,
    FigureSpec,
    figure_spec,
)
from repro.experiments.parallel import (
    CellError,
    GridExecutionError,
    merged_metrics,
    resolve_jobs,
    run_cells_parallel,
    run_figure_parallel,
)
from repro.experiments.runner import (
    GridCell,
    averaged_static_metrics,
    enumerate_cells,
    run_cell,
    run_figure,
    run_static_averaged,
)
from repro.experiments.report import (
    format_grid,
    format_telemetry_summary,
    grid_to_csv,
    telemetry_policy_rows,
)
from repro.experiments.serialization import (
    config_from_dict,
    config_to_dict,
    load_results,
    result_to_dict,
    save_results,
)
from repro.experiments.speedup import crossover_partition_size, speedup_curve
from repro.experiments import ablations

__all__ = [
    "CellError",
    "DEFAULT_PARTITION_SIZES",
    "DEFAULT_TOPOLOGIES",
    "ExperimentScale",
    "FigureSpec",
    "GridCell",
    "GridExecutionError",
    "ablations",
    "averaged_static_metrics",
    "config_from_dict",
    "config_to_dict",
    "crossover_partition_size",
    "enumerate_cells",
    "figure_spec",
    "format_grid",
    "format_telemetry_summary",
    "grid_to_csv",
    "merged_metrics",
    "resolve_jobs",
    "telemetry_policy_rows",
    "load_results",
    "result_to_dict",
    "run_cell",
    "run_cells_parallel",
    "run_figure",
    "run_figure_parallel",
    "run_static_averaged",
    "save_results",
    "speedup_curve",
]
