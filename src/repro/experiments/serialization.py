"""Serialisation of configurations and results.

Experiments are only reproducible if their configuration travels with
their numbers.  This module round-trips the two configuration objects
and flattens results for storage:

- :func:`config_to_dict` / :func:`config_from_dict` — SystemConfig
  (including the nested TransputerConfig) to/from plain dicts, JSON-safe;
- :func:`result_to_dict` — a BatchResult (per-job record + system
  counters) as a plain dict;
- :func:`save_results` / :func:`load_results` — JSON files bundling a
  configuration, a policy description, and any number of results.
"""

from __future__ import annotations

import dataclasses
import json

from repro.core.system import SystemConfig
from repro.transputer import TransputerConfig


def config_to_dict(config):
    """SystemConfig -> nested plain dict (JSON-safe)."""
    if not isinstance(config, SystemConfig):
        raise TypeError(f"expected SystemConfig, got {type(config).__name__}")
    out = dataclasses.asdict(config)
    return out


def config_from_dict(data):
    """Inverse of :func:`config_to_dict` (unknown keys are rejected)."""
    data = dict(data)
    transputer_data = data.pop("transputer", {})
    known = {f.name for f in dataclasses.fields(TransputerConfig)}
    unknown = set(transputer_data) - known
    if unknown:
        raise ValueError(f"unknown TransputerConfig fields: {sorted(unknown)}")
    transputer = TransputerConfig(**transputer_data)
    known = {f.name for f in dataclasses.fields(SystemConfig)} - {"transputer"}
    unknown = set(data) - known
    if unknown:
        raise ValueError(f"unknown SystemConfig fields: {sorted(unknown)}")
    return SystemConfig(transputer=transputer, **data)


def result_to_dict(result):
    """BatchResult -> plain dict with per-job records and counters."""
    snap = result.snapshot
    return {
        "label": result.label,
        "mean_response_time": result.mean_response_time,
        "std_response_time": result.std_response_time,
        "max_response_time": result.max_response_time,
        "makespan": result.makespan,
        "mean_response_by_class": result.mean_response_by_class(),
        "jobs": [
            {
                "name": job.name,
                "size_class": job.size_class,
                "submitted_at": job.submitted_at,
                "started_at": job.started_at,
                "completed_at": job.completed_at,
                "response_time": job.response_time,
                "num_processes": job.num_processes,
            }
            for job in result.jobs
        ],
        "system": {
            "makespan": snap.makespan,
            "mean_cpu_utilization": snap.mean_cpu_utilization,
            "comm_cpu_time": snap.comm_cpu_time,
            "app_cpu_time": snap.app_cpu_time,
            "preemptions": snap.preemptions,
            "dispatches": snap.dispatches,
            "memory_wait_time": snap.memory_wait_time,
            "mailbox_wait_time": snap.mailbox_wait_time,
            "buffer_wait_time": snap.buffer_wait_time,
            "peak_memory": snap.peak_memory,
            "messages": snap.messages,
            "bytes_sent": snap.bytes_sent,
            "max_link_utilization": snap.max_link_utilization,
        },
    }


def save_results(path, config, policy, results):
    """Write a JSON bundle: configuration + policy + results."""
    bundle = {
        "format": "repro-results-v1",
        "config": config_to_dict(config),
        "policy": repr(policy),
        "results": [result_to_dict(r) for r in results],
    }
    with open(path, "w") as fh:
        json.dump(bundle, fh, indent=2, sort_keys=True)
    return bundle


def load_results(path):
    """Read a bundle written by :func:`save_results`.

    Returns ``(config, policy_repr, results_data)`` where results_data
    is the list of plain dicts (simulation objects are not resurrected —
    rerun the configuration to regenerate them exactly).
    """
    with open(path) as fh:
        bundle = json.load(fh)
    if bundle.get("format") != "repro-results-v1":
        raise ValueError(f"not a repro results bundle: {path}")
    return (config_from_dict(bundle["config"]), bundle["policy"],
            bundle["results"])
