"""Parallel grid execution: fan independent cells across processes.

The paper's figures are a (policy x partition-size x topology) grid and
every cell owns its own :class:`~repro.sim.Environment`, so cells are
embarrassingly parallel.  :func:`run_figure_parallel` executes the same
explicit work list as the serial runner
(:func:`repro.experiments.runner.enumerate_cells`) on a
:class:`~concurrent.futures.ProcessPoolExecutor` and reassembles the
results deterministically:

- futures are reduced in **enumeration order**, never completion order,
  so the returned cell list is byte-for-byte the serial one;
- each worker detaches its telemetry (:meth:`Telemetry.detach
  <repro.obs.telemetry.Telemetry.detach>`) before shipping it back, so
  no simulation state crosses the process boundary; the parent appends
  entries to ``telemetry_sink`` in the same enumeration order;
- a failed cell is retried once (fresh worker submission) and, if it
  fails again, reported as a structured :class:`CellError` instead of
  killing the sweep.

Determinism guarantee: because every cell builds a fresh environment
and the simulator draws no wall-clock or cross-cell state, a
``jobs = N`` sweep produces cell-for-cell identical :class:`GridCell`
values to the serial sweep — the equivalence suite and the CI
smoke-sweep diff both enforce this.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.experiments.runner import enumerate_cells, run_cell
from repro.obs.metrics import MetricsRegistry

#: Submission attempts per cell (first try + one retry).
DEFAULT_ATTEMPTS = 2


@dataclass
class CellError:
    """Structured record of a grid cell that failed (after retrying)."""

    figure: int
    app: str
    architecture: str
    partition_size: int
    topology: str
    policy: str
    #: The paper label, e.g. "8L".
    label: str
    #: ``repr`` of the final exception.
    error: str
    #: Worker submissions consumed (includes the retry).
    attempts: int

    def describe(self):
        return (f"cell {self.label} [{self.policy}] figure {self.figure} "
                f"FAILED after {self.attempts} attempts: {self.error}")


class GridExecutionError(RuntimeError):
    """Raised when cells failed and the caller gave no ``errors`` sink."""

    def __init__(self, errors):
        self.errors = list(errors)
        lines = "\n".join(e.describe() for e in self.errors)
        super().__init__(
            f"{len(self.errors)} grid cell(s) failed:\n{lines}"
        )


def resolve_jobs(jobs):
    """Worker-count semantics shared by every ``--jobs`` flag.

    ``None`` and ``1`` mean serial; ``0`` means one worker per CPU
    core; negative counts are rejected.
    """
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs < 0:
        raise ValueError(f"--jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def _cell_worker(task, scale, transputer, system_overrides, want_telemetry):
    """Run one cell in a worker process; return picklable results only.

    Alongside the cell and its detached telemetry, the worker reports
    its own meta-observability sample — host wall-clock for the cell,
    the worker pid, and the trace-event volume (when telemetry is on) —
    which the parent feeds to the sweep observer.  Measuring happens
    entirely outside the simulation, so results are unaffected.
    """
    sink = [] if want_telemetry else None
    t0 = time.perf_counter()
    cell = run_cell(scale=scale, transputer=transputer,
                    system_overrides=system_overrides,
                    telemetry_sink=sink, **task)
    wall = time.perf_counter() - t0
    portable = [(label, policy, tel.detach())
                for label, policy, tel in (sink or [])]
    events = (sum(len(tel.recorder) + tel.recorder.dropped
                  for _l, _p, tel in portable)
              if want_telemetry else None)
    return cell, portable, wall, os.getpid(), events


def _task_label(task):
    return f"{task['partition_size']}{task['topology'][0].upper()}"


def run_cells_parallel(tasks, scale, jobs=None, transputer=None,
                       system_overrides=None, progress=None,
                       telemetry_sink=None, errors=None, pool=None,
                       observer=None):
    """Execute an explicit cell work list across worker processes.

    ``tasks`` is a list of :func:`run_cell` kwargs dicts (what
    :func:`enumerate_cells` produces).  Results are reduced in task
    order.  Returns the list of :class:`GridCell`\\ s that succeeded;
    failures are appended to ``errors`` as :class:`CellError`\\ s — if
    ``errors`` is ``None`` and any cell failed,
    :class:`GridExecutionError` is raised so failures never pass
    silently.  Pass ``pool`` to reuse an executor across several grids
    (the bench harness does); otherwise one is created for this call.

    ``observer`` is an optional :class:`repro.obs.sweeplog.SweepObserver`
    receiving sweep start / cell finish / retry / error / sweep finish
    callbacks with per-cell host wall-clock, worker pid, and events/sec.
    Observers are host-side only; ``None`` (the default) skips every
    hook, so an unobserved sweep runs exactly the code it ran before.
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    want_telemetry = telemetry_sink is not None
    own_pool = pool is None
    if own_pool:
        pool = ProcessPoolExecutor(max_workers=jobs)
    cells = []
    failures = []
    if observer is not None:
        observer.sweep_started(len(tasks), jobs=jobs)
    try:
        args = (scale, transputer, system_overrides, want_telemetry)
        futures = [pool.submit(_cell_worker, task, *args) for task in tasks]
        for index, (task, future) in enumerate(zip(tasks, futures)):
            attempts = 1
            while True:
                try:
                    cell, portable, wall, worker, events = future.result()
                except Exception as exc:  # noqa: BLE001 — reported per cell
                    if attempts < DEFAULT_ATTEMPTS:
                        attempts += 1
                        if observer is not None:
                            observer.cell_retry(index, task, repr(exc))
                        future = pool.submit(_cell_worker, task, *args)
                        continue
                    failures.append(CellError(
                        figure=task["figure"], app=task["app"],
                        architecture=task["architecture"],
                        partition_size=task["partition_size"],
                        topology=task["topology"],
                        policy=task["policy_kind"],
                        label=_task_label(task),
                        error=repr(exc), attempts=attempts,
                    ))
                    if observer is not None:
                        observer.cell_failed(index, task, repr(exc),
                                             attempts)
                    break
                cells.append(cell)
                if want_telemetry:
                    telemetry_sink.extend(portable)
                if observer is not None:
                    eps = (events / wall if events is not None and wall > 0
                           else None)
                    observer.cell_finished(index, task, wall_s=wall,
                                           attempts=attempts, worker=worker,
                                           events_per_sec=eps)
                if progress is not None:
                    progress(cell)
                break
    finally:
        if own_pool:
            pool.shutdown()
        if observer is not None:
            observer.sweep_finished()
    if failures:
        if errors is None:
            raise GridExecutionError(failures)
        errors.extend(failures)
    return cells


def run_figure_parallel(spec, scale, jobs=None, transputer=None,
                        system_overrides=None, progress=None,
                        telemetry_sink=None, errors=None, pool=None,
                        observer=None):
    """Parallel counterpart of :func:`repro.experiments.runner.run_figure`.

    Same cell list, same order, cell-for-cell identical
    :class:`GridCell` values; see the module docstring for the
    determinism and failure-reporting contract.
    """
    return run_cells_parallel(
        enumerate_cells(spec, scale), scale, jobs=jobs,
        transputer=transputer, system_overrides=system_overrides,
        progress=progress, telemetry_sink=telemetry_sink, errors=errors,
        pool=pool, observer=observer,
    )


def merged_metrics(entries):
    """One registry combining every telemetry entry's metrics.

    ``entries`` is a ``telemetry_sink`` list (serial or parallel).
    Counters add and histograms merge exactly
    (:meth:`MetricsRegistry.merge`); gauges are skipped by that
    method's contract (time-weighted levels from different runs have no
    meaningful sum).
    """
    combined = MetricsRegistry(env=None, series=False)
    for _label, _policy, tel in entries:
        combined.merge(tel.metrics)
    return combined
