"""Benchmark-trajectory harness: schema-versioned performance records.

Runs the four paper-figure scenarios at a chosen scale, records for each
what CI needs to spot a performance regression — wall-clock seconds,
trace events per second of host time, and mean response time per policy
— and reads/writes those records as ``BENCH_<date>.json`` documents so
consecutive runs can be compared mechanically.

Cross-machine comparability: absolute wall-clock on two different hosts
is meaningless, so every document embeds a ``calibration`` score — the
best-of-three time of a fixed pure-Python integer loop.  When both the
baseline and the current document carry one, :func:`compare` gates on
*normalised* wall-clock (``wall / calibration``), which cancels the
host's single-core speed; otherwise it falls back to raw seconds.

Only wall-clock regressions fail the comparison.  Mean response time is
*simulated* time — it must not drift at all between runs of the same
code (the simulator is deterministic), so drift is reported loudly but
treated as a correctness signal for humans, not a perf gate.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

#: Document schema identifier; bump on incompatible layout changes.
#: ``/2`` added the optional ``kernel_profile`` sections (per-scenario
#: and document-level) recording *where* kernel time went.
SCHEMA = "repro-bench/2"

#: Schemas :func:`load_bench` accepts.  ``repro-bench/1`` documents
#: (pre-kernel-profiler baselines) load fine — every ``/2`` addition is
#: optional — so old trajectories stay comparable.
COMPAT_SCHEMAS = (SCHEMA, "repro-bench/1")

#: The paper-figure scenarios the trajectory tracks.
DEFAULT_FIGURES = (3, 4, 5, 6)

_CALIBRATION_N = 2_000_000


def calibrate(repeats=3):
    """Host-speed score: best-of-N seconds for a fixed integer loop.

    Pure Python, allocation-free, no imports — approximates the
    single-core interpreter throughput that dominates the simulator's
    wall-clock.  Smaller is faster.
    """
    best = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        acc = 0
        for i in range(_CALIBRATION_N):
            acc += i & 7
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best:
            best = elapsed
    return best


def run_scenarios(scale_name="smoke", figures=DEFAULT_FIGURES, jobs=None,
                  kernel_profile=True):
    """Run the figure scenarios instrumented; returns scenario dicts.

    Each dict records the figure, wall-clock seconds, total trace
    events (kept + dropped — the true event volume), host events/sec,
    and mean response time per policy.  With ``kernel_profile`` (the
    default) the serial run of each figure executes under the kernel
    self-profiler and the record gains a ``kernel_profile`` section
    (:meth:`repro.obs.kernelprof.KernelProfiler.summary`) saying where
    the engine's wall-clock went; the profiler's <5 % overhead is part
    of the measured ``wall_s``, which is why the baseline is recorded
    the same way.

    ``jobs``, when it resolves to more than one worker (``0`` = one per
    core), additionally re-runs every figure on a shared process pool
    and records ``parallel_wall_s``, ``parallel_jobs``, and
    ``parallel_matches_serial`` — the latter a cell-for-cell equality
    check of the parallel sweep against the serial one, so the record
    doubles as an equivalence certificate.  The serial ``wall_s`` is
    always measured, so the document captures both trajectories.
    """
    from concurrent.futures import ProcessPoolExecutor

    from repro.experiments.config import ExperimentScale, figure_spec
    from repro.experiments.parallel import resolve_jobs, run_figure_parallel
    from repro.experiments.runner import run_figure
    from repro.obs.kernelprof import kernel_profile as _kernel_profile

    scale = (ExperimentScale.paper() if scale_name == "paper"
             else ExperimentScale.smoke())
    jobs = resolve_jobs(jobs)
    pool = ProcessPoolExecutor(max_workers=jobs) if jobs > 1 else None
    scenarios = []
    try:
        for number in figures:
            spec = figure_spec(number)
            sink = []
            if kernel_profile:
                t0 = time.perf_counter()
                with _kernel_profile() as kp:
                    cells = run_figure(spec, scale, telemetry_sink=sink)
                wall = time.perf_counter() - t0
                kernel_summary = kp.summary()
            else:
                t0 = time.perf_counter()
                cells = run_figure(spec, scale, telemetry_sink=sink)
                wall = time.perf_counter() - t0
                kernel_summary = None
            events = sum(len(tel.recorder) + tel.recorder.dropped
                         for _label, _policy, tel in sink)
            mean_rt = {}
            counts = {}
            for cell in cells:
                mean_rt[cell.policy] = (
                    mean_rt.get(cell.policy, 0.0) + cell.mean_response_time
                )
                counts[cell.policy] = counts.get(cell.policy, 0) + 1
            for policy in mean_rt:
                mean_rt[policy] /= counts[policy]
            record = {
                "figure": number,
                "title": spec.title,
                "cells": len(cells),
                "wall_s": wall,
                "events": events,
                "events_per_sec": events / wall if wall > 0 else 0.0,
                "mean_rt": dict(sorted(mean_rt.items())),
            }
            if kernel_summary is not None:
                record["kernel_profile"] = kernel_summary
            if pool is not None:
                t0 = time.perf_counter()
                par_cells = run_figure_parallel(spec, scale, jobs=jobs,
                                                pool=pool)
                record["parallel_wall_s"] = time.perf_counter() - t0
                record["parallel_jobs"] = jobs
                record["parallel_matches_serial"] = par_cells == cells
            scenarios.append(record)
    finally:
        if pool is not None:
            pool.shutdown()
    return scenarios


def run_decision_pair(scale_name="smoke", figure=4):
    """Measure the decision ledger's cost on one figure scenario.

    Runs the figure once ledger-off and once ledger-on, each timed
    against an adjacent :func:`calibrate` score so host-speed drift
    partially cancels (same discipline as the kernel profiler's
    overhead gate), and returns the pair as a record for
    :func:`bench_document`'s optional ``decision_ledger`` key —
    tracked across ``BENCH_*.json`` documents so a hot-path regression
    in the ledger shows up as a rising ``overhead_ratio`` in the
    trajectory.  A single pair on a noisy host can overstate the ratio;
    the enforced < 5 % ceiling lives in the test suite's min-of-pairs
    gate, this record is the longitudinal signal.
    """
    from repro.experiments.config import ExperimentScale, figure_spec
    from repro.experiments.runner import run_figure

    scale = (ExperimentScale.paper() if scale_name == "paper"
             else ExperimentScale.smoke())
    spec = figure_spec(figure)
    run_figure(spec, scale)  # warm both paths
    run_figure(spec, scale, decisions_sink=[])

    def measure(sink):
        cal = calibrate(repeats=1)
        t0 = time.perf_counter()
        run_figure(spec, scale, decisions_sink=sink)
        return (time.perf_counter() - t0) / cal

    off_norm = measure(None)
    sink = []
    on_norm = measure(sink)
    return {
        "figure": figure,
        "off_normalised_wall": off_norm,
        "on_normalised_wall": on_norm,
        "overhead_ratio": on_norm / off_norm if off_norm > 0 else 0.0,
        "decisions": sum(led.total for _l, _p, led in sink),
        "deferrals": sum(led.deferrals for _l, _p, led in sink),
    }


def bench_document(scenarios, scale_name="smoke", calibration=None,
                   date=None, run_id=None, prior_runs=None,
                   decision_ledger=None):
    """Assemble the schema-versioned benchmark document.

    When the scenarios carry parallel timings (``run_scenarios`` with
    ``jobs`` > 1) the document additionally records
    ``parallel_total_wall_s``, ``parallel_jobs``, and
    ``parallel_speedup`` (serial total / parallel total).  These fields
    are optional in the schema, so documents from serial runs — and
    older baselines — still load and compare.

    ``run_id`` names this run in the trajectory (defaults to the date);
    ``prior_runs``, when given, embeds the ordered run ids of the
    documents that preceded this one (:func:`load_trajectory` discovers
    them), so every document records where it sits in the series.

    When every scenario carries a ``kernel_profile`` section the
    document gains an aggregate one: per-event-type counts and seconds
    summed across scenarios (shares recomputed over the combined kernel
    time), total kernel seconds and events, the kernel-clock events/sec
    that results, and the worst agenda depth seen.

    ``decision_ledger``, when given (:func:`run_decision_pair`),
    embeds the ledger-off/ledger-on overhead pair — optional in the
    schema like every ``/2`` addition, so older documents still load.
    """
    date = date or time.strftime("%Y-%m-%d")
    doc = {
        "schema": SCHEMA,
        "date": date,
        "run_id": run_id or date,
        "scale": scale_name,
        "calibration": calibration,
        "total_wall_s": sum(s["wall_s"] for s in scenarios),
        "scenarios": scenarios,
    }
    if prior_runs is not None:
        doc["prior_runs"] = list(prior_runs)
    if decision_ledger is not None:
        doc["decision_ledger"] = dict(decision_ledger)
    parallel = [s for s in scenarios if "parallel_wall_s" in s]
    if parallel and len(parallel) == len(scenarios):
        par_total = sum(s["parallel_wall_s"] for s in parallel)
        doc["parallel_total_wall_s"] = par_total
        doc["parallel_jobs"] = max(s["parallel_jobs"] for s in parallel)
        doc["parallel_speedup"] = (doc["total_wall_s"] / par_total
                                   if par_total > 0 else 0.0)
    profiles = [s["kernel_profile"] for s in scenarios
                if "kernel_profile" in s]
    if profiles and len(profiles) == len(scenarios):
        doc["kernel_profile"] = _merge_kernel_profiles(profiles)
    return doc


def _merge_kernel_profiles(profiles):
    """Aggregate per-scenario kernel summaries into one document-level one."""
    kernel_s = sum(p["kernel_s"] for p in profiles)
    events = sum(p["events"] for p in profiles)
    types = {}
    for p in profiles:
        for name, rec in p["event_types"].items():
            agg = types.setdefault(name, {"count": 0, "s": 0.0})
            agg["count"] += rec["count"]
            agg["s"] += rec["s"]
    denom = kernel_s or 1.0
    for rec in types.values():
        rec["share"] = rec["s"] / denom
    return {
        "kernel_s": kernel_s,
        "events": events,
        "events_per_sec": events / kernel_s if kernel_s > 0 else 0.0,
        "pushes": sum(p["pushes"] for p in profiles),
        # Absent from pre-handoff summaries, where pushes covered every
        # processed event on its own.
        "handoffs": sum(p.get("handoffs", 0) for p in profiles),
        "max_agenda_depth": max(p["max_agenda_depth"] for p in profiles),
        "event_types": dict(sorted(types.items(),
                                   key=lambda kv: -kv[1]["s"])),
    }


def write_bench(doc, path):
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path


def load_bench(path):
    """Load and validate a benchmark document (``/2`` or legacy ``/1``)."""
    with open(path) as fh:
        doc = json.load(fh)
    from repro.obs.schemas import check_schema

    check_schema(doc.get("schema"), COMPAT_SCHEMAS, "benchmark",
                 where=str(path))
    for key in ("date", "scale", "total_wall_s", "scenarios"):
        if key not in doc:
            raise ValueError(f"{path}: benchmark document missing {key!r}")
    for s in doc["scenarios"]:
        for key in ("figure", "wall_s", "events", "events_per_sec",
                    "mean_rt"):
            if key not in s:
                raise ValueError(
                    f"{path}: scenario record missing {key!r}"
                )
        if "kernel_profile" in s:
            _check_kernel_profile(s["kernel_profile"],
                                  f"{path}: figure {s['figure']}")
    if "kernel_profile" in doc:
        _check_kernel_profile(doc["kernel_profile"], str(path))
    if "prior_runs" in doc and not isinstance(doc["prior_runs"], list):
        raise ValueError(f"{path}: prior_runs must be a list of run ids")
    if "decision_ledger" in doc:
        pair = doc["decision_ledger"]
        if not isinstance(pair, dict):
            raise ValueError(f"{path}: decision_ledger must be an object")
        for key in ("figure", "off_normalised_wall", "on_normalised_wall",
                    "overhead_ratio", "decisions", "deferrals"):
            if key not in pair:
                raise ValueError(
                    f"{path}: decision_ledger section missing {key!r}")
    return doc


def _check_kernel_profile(section, where):
    """Shape-check a ``kernel_profile`` section of a ``/2`` document."""
    if not isinstance(section, dict):
        raise ValueError(f"{where}: kernel_profile must be an object")
    for key in ("kernel_s", "events", "events_per_sec", "pushes",
                "max_agenda_depth", "event_types"):
        if key not in section:
            raise ValueError(
                f"{where}: kernel_profile section missing {key!r}"
            )
    if not isinstance(section["event_types"], dict):
        raise ValueError(
            f"{where}: kernel_profile event_types must be an object"
        )


def run_id_of(doc):
    """The run id naming a document in the trajectory (date fallback)."""
    return str(doc.get("run_id") or doc.get("date", "?"))


def load_trajectory(results_dir, pattern="BENCH_*.json", strict=True):
    """Discover the benchmark trajectory recorded in a directory.

    Globs ``BENCH_*.json`` under ``results_dir``, validates each
    document's schema version (:func:`load_bench`), and returns
    ``[(path, doc), ...]`` ordered by the schema timestamp (``date``,
    then ``run_id``, then filename as tie-breakers) — oldest first, so
    the last entry is the newest run.  With ``strict=False`` documents
    that fail validation are skipped instead of raising, which is what
    run-discovery callers (the bench script, the run differ) want when
    a directory mixes hand-edited files in.
    """
    trajectory = []
    for path in sorted(Path(results_dir).glob(pattern)):
        try:
            doc = load_bench(path)
        except (OSError, ValueError):
            if strict:
                raise
            continue
        trajectory.append((path, doc))
    trajectory.sort(key=lambda item: (item[1].get("date", ""),
                                      run_id_of(item[1]), item[0].name))
    return trajectory


def trajectory_series(docs):
    """Flatten bench documents into the diff report's trajectory rows."""
    series = []
    for doc in docs:
        if not doc:
            continue
        wall, normalised = _normalised_wall(doc)
        kernel = doc.get("kernel_profile")
        series.append({
            "run_id": run_id_of(doc),
            "date": doc.get("date"),
            "scale": doc.get("scale"),
            "total_wall_s": doc.get("total_wall_s"),
            "normalised_wall": wall if normalised else None,
            # None for legacy repro-bench/1 points recorded before the
            # kernel self-profiler existed.
            "kernel_events_per_sec": (kernel["events_per_sec"]
                                      if kernel else None),
            "prior_runs": list(doc.get("prior_runs", [])),
        })
    return series


def _normalised_wall(doc):
    cal = doc.get("calibration")
    if cal:
        return doc["total_wall_s"] / cal, True
    return doc["total_wall_s"], False


def compare(baseline, current, tolerance=0.20):
    """Compare two benchmark documents; returns (ok, report lines).

    Fails (``ok=False``) when the current total wall-clock exceeds the
    baseline by more than ``tolerance`` (fractional), using calibrated
    normalisation when both documents carry a calibration score.
    Mean-response-time drift between identical scales is reported but
    never fails the comparison — simulated time is a determinism
    concern, not a performance one.
    """
    lines = []
    base_wall, base_norm = _normalised_wall(baseline)
    cur_wall, cur_norm = _normalised_wall(current)
    normalised = base_norm and cur_norm
    if not normalised:
        base_wall = baseline["total_wall_s"]
        cur_wall = current["total_wall_s"]
    unit = "normalised" if normalised else "raw seconds"
    ratio = cur_wall / base_wall if base_wall > 0 else float("inf")
    lines.append(
        f"wall-clock ({unit}): baseline {base_wall:.3f}, "
        f"current {cur_wall:.3f}, ratio {ratio:.3f} "
        f"(tolerance {1 + tolerance:.2f})"
    )
    ok = ratio <= 1.0 + tolerance
    if not ok:
        lines.append(
            f"FAIL: wall-clock regressed {100 * (ratio - 1):.1f}% "
            f"(> {100 * tolerance:.0f}% allowed)"
        )

    if baseline.get("scale") == current.get("scale"):
        base_rt = {s["figure"]: s["mean_rt"]
                   for s in baseline["scenarios"]}
        for s in current["scenarios"]:
            ref = base_rt.get(s["figure"])
            if ref is None:
                continue
            for policy, rt in s["mean_rt"].items():
                old = ref.get(policy)
                if old is None:
                    continue
                if abs(rt - old) > 1e-9 * max(1.0, abs(old)):
                    lines.append(
                        f"NOTE: figure {s['figure']} {policy} mean RT "
                        f"drifted {old:.6f} -> {rt:.6f} (simulated "
                        f"time changed; expected only if the model "
                        f"changed)"
                    )
    else:
        lines.append(
            f"scales differ ({baseline.get('scale')} vs "
            f"{current.get('scale')}): RT drift check skipped"
        )
    return ok, lines
