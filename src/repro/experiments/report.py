"""Text and CSV rendering of experiment grids."""

from __future__ import annotations

import io


def _series(cells):
    """Group cells into {policy: {label: mean_rt}} preserving order."""
    series = {}
    labels = []
    for cell in cells:
        series.setdefault(cell.policy, {})[cell.label] = cell.mean_response_time
        if cell.label not in labels:
            labels.append(cell.label)
    return series, labels


def format_grid(cells, title=""):
    """Render a figure's cells as the paper's two-series table.

    One row per grid label (e.g. ``8L``), one column per policy, plus a
    ratio column (time-sharing / static) so the winner is immediate.
    """
    series, labels = _series(cells)
    if not labels:
        return (title + "\n" if title else "") + "  (no cells)\n"
    policies = list(series)
    widths = [max([6, *(len(lbl) for lbl in labels)])]
    header = ["config"] + policies + (["ts/static"]
                                      if {"static", "timesharing"} <= set(policies)
                                      else [])
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    colw = 14
    out.write(header[0].ljust(widths[0]))
    for h in header[1:]:
        out.write(h.rjust(colw))
    out.write("\n")
    out.write("-" * (widths[0] + colw * (len(header) - 1)) + "\n")
    for label in labels:
        out.write(label.ljust(widths[0]))
        for policy in policies:
            value = series[policy].get(label)
            out.write((f"{value:.3f}" if value is not None else "-").rjust(colw))
        if "ts/static" in header:
            s = series["static"].get(label)
            t = series["timesharing"].get(label)
            if s and t:
                out.write(f"{t / s:.2f}".rjust(colw))
            else:
                out.write("-".rjust(colw))
        out.write("\n")
    return out.getvalue()


def grid_to_csv(cells):
    """CSV dump of a grid (one row per cell)."""
    out = io.StringIO()
    out.write("figure,app,architecture,partition_size,topology,policy,"
              "label,mean_response_time,makespan,memory_wait,"
              "cpu_utilization\n")
    for c in cells:
        out.write(
            f"{c.figure},{c.app},{c.architecture},{c.partition_size},"
            f"{c.topology},{c.policy},{c.label},"
            f"{c.mean_response_time:.6f},{c.makespan:.6f},"
            f"{c.memory_wait:.6f},{c.cpu_utilization:.6f}\n"
        )
    return out.getvalue()


def telemetry_policy_rows(entries):
    """Aggregate telemetry per policy: (rows, columns) for the report.

    ``entries`` is a list of ``(cell_label, policy, Telemetry)`` as
    produced by the runner's ``telemetry_sink``.  Histogram means merge
    exactly (shared fixed bucket boundaries → sums of sums).
    """
    agg = {}
    for _label, policy, tel in entries:
        row = agg.setdefault(policy, {
            "policy": policy, "runs": 0, "events": 0, "dropped": 0,
            "preemptions": 0, "messages": 0,
            "_disp_total": 0.0, "_disp_count": 0,
            "_alloc_total": 0.0, "_alloc_count": 0,
            "_lat_total": 0.0, "_lat_count": 0,
        })
        row["runs"] += 1
        row["events"] += len(tel.recorder)
        row["dropped"] += tel.recorder.dropped
        row["preemptions"] += getattr(
            tel.metrics.get("cpu.preemptions"), "value", 0)
        row["messages"] += getattr(
            tel.metrics.get("net.messages"), "value", 0)
        for key, name in (("disp", "cpu.dispatch_latency"),
                          ("alloc", "sched.allocation_wait"),
                          ("lat", "net.msg_latency")):
            hist = tel.metrics.get(name)
            if hist is not None:
                row[f"_{key}_total"] += hist.total
                row[f"_{key}_count"] += hist.count
    rows = []
    for policy in sorted(agg):
        row = agg[policy]
        for key, out in (("disp", "disp_lat"), ("alloc", "alloc_wait"),
                         ("lat", "msg_lat")):
            count = row.pop(f"_{key}_count")
            total = row.pop(f"_{key}_total")
            row[out] = total / count if count else 0.0
        rows.append(row)
    columns = ["policy", "runs", "events", "dropped", "preemptions",
               "messages", "disp_lat", "alloc_wait", "msg_lat"]
    return rows, columns


def format_telemetry_summary(entries, title="=== Telemetry (per policy)"):
    """Render the per-policy telemetry summary table."""
    rows, columns = telemetry_policy_rows(entries)
    return format_ablation(rows, columns, title=title)


def attribution_policy_rows(entries):
    """Wait-state attribution aggregated per policy: (rows, columns).

    ``entries`` is the runner's ``telemetry_sink`` list; each cell's
    trace is profiled (:func:`repro.obs.profile.profile_run`) and the
    per-job bucket seconds are pooled per policy, reported as fractions
    of total response time so policies with different absolute scales
    compare directly.
    """
    from repro.obs.profile import bucket_names, profile_run

    buckets = bucket_names()
    agg = {}
    for _label, policy, tel in entries:
        prof = profile_run(tel)
        row = agg.setdefault(policy, {
            "policy": policy, "jobs": 0, "_rt": 0.0,
            **{f"_{b}": 0.0 for b in buckets},
        })
        row["jobs"] += len(prof.jobs)
        row["_rt"] += sum(j.response_time for j in prof.jobs)
        for b, v in prof.bucket_totals().items():
            row[f"_{b}"] = row.get(f"_{b}", 0.0) + v
    rows = []
    for policy in sorted(agg):
        row = agg[policy]
        rt = row.pop("_rt")
        row["mean_rt"] = rt / row["jobs"] if row["jobs"] else 0.0
        for b in buckets:
            v = row.pop(f"_{b}")
            row[b] = v / rt if rt > 0 else 0.0
        rows.append(row)
    columns = ["policy", "jobs", "mean_rt", *buckets]
    return rows, columns


def format_attribution_summary(
    entries,
    title="=== Wait-state attribution (fractions of response time)",
):
    """Render the per-policy wait-state attribution table."""
    rows, columns = attribution_policy_rows(entries)
    return format_ablation(rows, columns, title=title)


def format_ablation(rows, columns, title=""):
    """Render ablation rows (list of dicts) as an aligned table."""
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    widths = [max(len(col), 12) for col in columns]
    for col, w in zip(columns, widths):
        out.write(col.rjust(w + 2))
    out.write("\n")
    out.write("-" * (sum(widths) + 2 * len(widths)) + "\n")
    for row in rows:
        for col, w in zip(columns, widths):
            value = row.get(col, "")
            if isinstance(value, float):
                value = f"{value:.3f}"
            out.write(str(value).rjust(w + 2))
        out.write("\n")
    return out.getvalue()
