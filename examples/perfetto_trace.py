#!/usr/bin/env python
"""Record a fully instrumented run and export it as a Perfetto trace.

Runs the hybrid policy on a small batch with telemetry enabled, then
writes

- ``run.perfetto.json`` — a Chrome-trace/Perfetto JSON; open it at
  https://ui.perfetto.dev to see one process per node (CPU slices,
  preemptions, per-link transfers) plus a scheduler process with each
  job's ``queued -> allocated -> executing`` lifecycle spans, and
- ``run.jsonl`` — the same telemetry as flat JSON records.

Telemetry is off by default and free when off: enabling it never
creates simulation events, so the batch result is byte-identical
either way.

Run:  python examples/perfetto_trace.py
"""

from repro.core import HybridPolicy, MulticomputerSystem, SystemConfig
from repro.obs import job_spans, write_jsonl, write_perfetto
from repro.workload import standard_batch


def main():
    config = SystemConfig(num_nodes=16, topology="mesh", telemetry=True)
    system = MulticomputerSystem(config, HybridPolicy(partition_size=4))
    batch = standard_batch("matmul", num_small=6, num_large=2)
    result = system.run_batch(batch)

    tel = system.telemetry
    summary = tel.summary()
    print(f"batch of {len(result.jobs)} jobs, "
          f"mean response {result.mean_response_time:.3f}s")
    print(f"recorded {summary['events']} events "
          f"({summary['dropped']} dropped), "
          f"{summary['instruments']} instruments\n")

    print("A few of the metrics:")
    for name in ("cpu.preemptions", "net.messages"):
        print(f"  {name:22s} {tel.metrics.counter(name).value}")
    for name in ("cpu.dispatch_latency", "net.msg_latency"):
        hist = tel.metrics.get(name)
        print(f"  {name:22s} n={hist.count}  mean={hist.mean:.6f}s  "
              f"max={hist.max:.6f}s")

    print("\nFirst job's derived lifecycle spans:")
    first = result.jobs[0].name
    for span in job_spans(tel.recorder):
        if span.track == first:
            print(f"  {span.name:10s} {span.start:8.3f}s -> "
                  f"{span.end:8.3f}s  ({span.duration:.3f}s)")

    n = write_perfetto(tel, "run.perfetto.json")
    lines = write_jsonl(tel, "run.jsonl")
    print(f"\nwrote run.perfetto.json ({n} trace events) — open it at "
          f"https://ui.perfetto.dev")
    print(f"wrote run.jsonl ({lines} records)")


if __name__ == "__main__":
    main()
