#!/usr/bin/env python
"""Space-sharing refinements: queue disciplines and (semi-)dynamic sizing.

The paper's Section 2.1 taxonomy — static / semi-static / dynamic
space-sharing, plus job-characteristic-aware queueing — in one runnable
comparison:

1. queue disciplines: FCFS under adversarial arrivals vs informed SJF
   and LJF (the paper's best/worst orderings, made into policies);
2. semi-static: partition size re-chosen per batch;
3. dynamic: partition size chosen per dispatch from the current load.

Run:  python examples/adaptive_partitioning.py
"""

from repro.core import (
    DynamicSpaceSharing,
    MulticomputerSystem,
    SemiStaticSpaceSharing,
    StaticSpaceSharing,
    SystemConfig,
)
from repro.trace import render_bars
from repro.workload import standard_batch


def config():
    return SystemConfig(num_nodes=16, topology="mesh")


def main():
    print("=== 1. Queue disciplines (adversarial largest-first arrivals)\n")
    adversarial = standard_batch("matmul", architecture="adaptive").ordered(
        "worst"
    )
    means = {}
    for discipline in ("fcfs", "sjf", "ljf"):
        policy = StaticSpaceSharing(4, discipline=discipline)
        result = MulticomputerSystem(config(), policy).run_batch(adversarial)
        means[discipline] = result.mean_response_time
    print(render_bars(means, unit="s"))
    print("SJF recovers the paper's best-case ordering no matter how jobs")
    print("arrive; FCFS on largest-first arrivals IS the worst case.\n")

    print("=== 2. Semi-static: repartition between batches\n")
    lone = standard_batch("matmul", architecture="adaptive",
                          num_small=0, num_large=2)
    crowd = standard_batch("matmul", architecture="adaptive",
                           num_small=12, num_large=0)
    means = {}
    for name, policy in (
        ("fixed p=2", StaticSpaceSharing(2)),
        ("fixed p=8", StaticSpaceSharing(8)),
        ("semi-static", SemiStaticSpaceSharing()),
    ):
        system = MulticomputerSystem(config(), policy)
        results = system.run_batches([lone, crowd])
        times = [t for r in results for t in r.response_times]
        means[name] = sum(times) / len(times)
    print(render_bars(means, unit="s"))
    print("A 2-job batch wants big partitions; a 12-job batch wants small")
    print("ones.  Semi-static picks per batch and beats both fixed sizes.\n")

    print("=== 3. Dynamic: size per dispatch from the current load\n")
    batch = standard_batch("matmul", architecture="adaptive")
    means = {}
    for name, policy in (
        ("static p=4", StaticSpaceSharing(4)),
        ("dynamic", DynamicSpaceSharing()),
        ("dynamic cap=4", DynamicSpaceSharing(max_partition=4)),
    ):
        result = MulticomputerSystem(config(), policy).run_batch(batch)
        means[name] = result.mean_response_time
    print(render_bars(means, unit="s"))
    print("Uncapped dynamic sizing hands the last stragglers the whole")
    print("machine — past matmul's efficiency break-even (see")
    print("examples/speedup_curves.py), big partitions are mostly")
    print("communication, so the stragglers get *slower*.  Capping the")
    print("partition near the break-even closes most of the gap —")
    print("knowing the application's speedup curve is what the dynamic")
    print("policies of Dussa et al. and Rosti et al. are really about.")


if __name__ == "__main__":
    main()
