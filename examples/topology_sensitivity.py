#!/usr/bin/env python
"""Topology and switching sensitivity of the scheduling policies.

The paper observes that time-sharing is hurt most by low-degree,
long-diameter networks (the linear array) because store-and-forward
switching multiplies buffer and copy demands at intermediate nodes, and
predicts (Section 5.2) that wormhole routing would remove most of that
cost.  This example measures both claims:

1. mean response time per topology for static vs pure time-sharing;
2. the same comparison with the network switched to wormhole mode.

Run:  python examples/topology_sensitivity.py
"""

from repro.core import (
    MulticomputerSystem,
    StaticSpaceSharing,
    SystemConfig,
    TimeSharing,
)
from repro.experiments.runner import run_static_averaged
from repro.trace import render_series
from repro.workload import standard_batch


def sweep(batch, switching):
    series = {"static": {}, "timesharing": {}}
    for topo in ("linear", "ring", "mesh"):
        config = SystemConfig(num_nodes=16, topology=topo,
                              switching=switching)
        static_rt, _, _ = run_static_averaged(config, 16, batch)
        ts = MulticomputerSystem(config, TimeSharing()).run_batch(batch)
        label = f"16{topo[0].upper()}"
        series["static"][label] = static_rt
        series["timesharing"][label] = ts.mean_response_time
    return series


def main():
    batch = standard_batch("matmul", architecture="fixed")

    print("=== Store-and-forward switching (the real 1997 hardware)\n")
    sf = sweep(batch, "store_forward")
    print(render_series(sf))
    ts = sf["timesharing"]
    print(f"time-sharing linear-array penalty vs best topology: "
          f"{max(ts.values()) / min(ts.values()):.2f}x\n")

    print("=== Wormhole switching (the paper's Section 5.2 prediction)\n")
    wh = sweep(batch, "wormhole")
    print(render_series(wh))
    tw = wh["timesharing"]
    print(f"time-sharing linear-array penalty vs best topology: "
          f"{max(tw.values()) / min(tw.values()):.2f}x")
    speedup = min(ts.values()) / min(tw.values())
    print(f"\nWormhole switching needs no transit buffers and no per-hop")
    print(f"memory copies: everything gets ~{speedup:.1f}x faster outright")
    print("and the store-and-forward buffer demand disappears entirely.")
    print("Distance sensitivity does not vanish, though — with the")
    print("software costs gone, raw channel contention is all that is")
    print("left, and the linear array's long shared paths still collide")
    print("the most.")


if __name__ == "__main__":
    main()
