#!/usr/bin/env python
"""Figures 5 & 6: sort scheduling, and the architecture effect.

Reproduces the paper's sort experiments and highlights its
sort-specific finding: because the selection-sort worker phase is
quadratic while divide/merge are linear, the *fixed* software
architecture (always 16 processes, hence 16 small sub-arrays) beats the
adaptive one by a wide margin on small partitions.

Run:  python examples/sort_scheduling.py [--smoke]
"""

import sys

from repro.core import MulticomputerSystem, StaticSpaceSharing, SystemConfig
from repro.experiments import (
    ExperimentScale,
    figure_spec,
    format_grid,
    run_figure,
)
from repro.trace import render_bars
from repro.workload import standard_batch


def architecture_effect(scale):
    """Quantify F7: fixed vs adaptive on single-processor partitions."""
    means = {}
    for arch in ("fixed", "adaptive"):
        batch = standard_batch("sort", architecture=arch,
                               **scale.batch_kwargs("sort"))
        config = SystemConfig(num_nodes=16, topology="linear")
        system = MulticomputerSystem(config, StaticSpaceSharing(1))
        means[f"{arch} (16 partitions of 1)"] = (
            system.run_batch(batch).mean_response_time
        )
    return means


def main(argv):
    scale = (ExperimentScale.smoke() if "--smoke" in argv
             else ExperimentScale.paper())
    for number in (5, 6):
        spec = figure_spec(number)
        print(f"=== Figure {number}: {spec.title} [{scale.name} scale]\n")
        cells = run_figure(spec, scale)
        print(format_grid(cells))

    print("=== The architecture effect (paper Section 5.3)\n")
    print("A selection sort is Theta(n^2/2): sixteen sub-arrays of n/16")
    print("cost 16x less total work than one array of n, so the fixed")
    print("architecture wins big even on a single processor:\n")
    means = architecture_effect(scale)
    print(render_bars(means, unit="s"))
    vals = list(means.values())
    print(f"adaptive / fixed = {max(vals) / min(vals):.1f}x\n")


if __name__ == "__main__":
    main(sys.argv[1:])
