#!/usr/bin/env python
"""Figures 3 & 4: matrix-multiplication scheduling across the full grid.

Sweeps partition size (1, 2, 4, 8, 16) and topology (L, R, M, H) for the
static and time-sharing/hybrid policies under both software
architectures, reproducing the structure of the paper's Figures 3
(fixed) and 4 (adaptive).

At full paper scale this takes a couple of minutes; pass ``--smoke`` for
a fast reduced-size run with the same qualitative shape.

Run:  python examples/matmul_scheduling.py [--smoke]
"""

import sys

from repro.experiments import (
    ExperimentScale,
    figure_spec,
    format_grid,
    run_figure,
)
from repro.trace import render_series


def main(argv):
    scale = (ExperimentScale.smoke() if "--smoke" in argv
             else ExperimentScale.paper())
    for number in (3, 4):
        spec = figure_spec(number)
        print(f"=== Figure {number}: {spec.title} [{scale.name} scale]\n")
        cells = run_figure(spec, scale)
        print(format_grid(cells))
        series = {}
        for cell in cells:
            series.setdefault(cell.policy, {})[cell.label] = (
                cell.mean_response_time
            )
        print(render_series(series))
        ratios = [
            c.mean_response_time / s.mean_response_time
            for c in cells if c.policy == "timesharing"
            for s in cells
            if s.policy == "static" and s.label == c.label
        ]
        wins = sum(1 for r in ratios if r > 1)
        print(f"static space-sharing wins {wins}/{len(ratios)} grid points "
              f"(paper: time-sharing always worse for this application)\n")


if __name__ == "__main__":
    main(sys.argv[1:])
