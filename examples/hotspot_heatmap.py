#!/usr/bin/env python
"""Visualising the coordinator hotspot with per-node utilisation heat rows.

Under pure time-sharing with aligned placement (the natural 1997
implementation), every job's coordinator lands on node 0 of the
partition — node 0 does all the message copying while other nodes wait
for work.  The utilisation timeline makes the hotspot visible, and
shows how staggered placement or tree-structured B distribution
dissolves it.

Run:  python examples/hotspot_heatmap.py
"""

from repro.core import MulticomputerSystem, SystemConfig, TimeSharing
from repro.trace import render_utilization, utilization_probes
from repro.workload import standard_batch
from repro.workload.batch import BatchWorkload, JobSpec
from repro.workload.matmul import MatMulApplication


def run(placement="aligned", b_distribution="flat"):
    cfg = SystemConfig(num_nodes=8, topology="linear", placement=placement)
    base = standard_batch("matmul", architecture="adaptive", num_small=6,
                          num_large=2)
    batch = BatchWorkload([
        JobSpec(MatMulApplication(spec.application.n,
                                  architecture="adaptive",
                                  b_distribution=b_distribution),
                spec.size_class)
        for spec in base
    ])
    probes = {}
    system = MulticomputerSystem(cfg, TimeSharing())
    result = system.run_batch(
        batch,
        instrument=lambda s: probes.update(
            utilization_probes(s, interval=0.02)
        ),
    )
    hotspot = system.partitions[0].network.stats.hotspot()
    return probes, result, hotspot


def main():
    for title, kwargs in (
        ("aligned placement, flat B distribution (the 1997 default)",
         dict(placement="aligned", b_distribution="flat")),
        ("staggered placement", dict(placement="staggered")),
        ("aligned + tree B distribution", dict(b_distribution="tree")),
    ):
        probes, result, hotspot = run(**kwargs)
        print(f"=== {title}")
        print(f"    mean response {result.mean_response_time:.3f}s, "
              f"makespan {result.makespan:.3f}s, "
              f"network hotspot: node {hotspot[0]} "
              f"({hotspot[1]} packet arrivals)\n")
        print(render_utilization(probes, result.makespan, width=56))
        print()


if __name__ == "__main__":
    main()
