#!/usr/bin/env python
"""Open-system extension: jobs arrive over time instead of as a batch.

The paper evaluates closed 16-job batches; production machines see a
*stream* of arriving jobs.  This example drives a simulated 4-node
slice of the machine with a lazy Poisson arrival stream of fork-join
jobs, sweeps the offered load, and compares static space-sharing (one
job per single-processor partition — an M/M/4 queue, validated against
the Erlang-C formula) with pure time-sharing (processor sharing).

It runs entirely on the streaming observability layer: every cell uses
``run_open(collect_jobs=False)``, which keeps O(1) memory no matter how
long the stream runs, and reports the MSER-truncated steady-state mean
with a batch-means 95% confidence interval instead of a raw average
over the whole run (warm-up bias included).  Crank ``DURATION`` up to
hours of simulated time and memory stays flat.

The same sweep is available from the command line with JSONL output:

    repro-experiments steady --rho 0.3,0.5,0.7,0.85 \
        --duration 80 --steady-out steady.jsonl

Run:  python examples/open_system.py
"""

import numpy as np

from repro.analysis import mmc_mean_response
from repro.core import (
    MulticomputerSystem,
    StaticSpaceSharing,
    SystemConfig,
    TimeSharing,
)
from repro.obs.streaming import SteadyStateSink
from repro.trace import render_series
from repro.workload import JobSpec, SyntheticForkJoin, poisson_arrivals

NODES = 4
MEAN_OPS = 1.65e5         # 0.5 s of service at the default 3.3e5 ops/s
SERVICE_RATE = 3.3e5 / MEAN_OPS
DURATION = 80.0


def spec_factory(rng):
    ops = max(float(rng.exponential(MEAN_OPS)), 1.0)
    return JobSpec(
        SyntheticForkJoin(ops, architecture="adaptive", message_bytes=64),
        "exp",
    )


def run(policy, rate, seed):
    rng = np.random.default_rng(seed)
    arrivals = poisson_arrivals(rate, DURATION, spec_factory, rng)
    config = SystemConfig(num_nodes=NODES, topology="mesh")
    system = MulticomputerSystem(config, policy)
    sink = SteadyStateSink(window=DURATION / 20.0)
    result = system.run_open(arrivals, collect_jobs=False, sink=sink)
    return result


def main():
    series = {f"static ({NODES}x1)": {}, "time-sharing": {},
              f"M/M/{NODES} theory": {}}
    print(f"Poisson arrivals of exponential fork-join jobs on {NODES} nodes"
          f" (mean service {MEAN_OPS / 3.3e5:.2f}s on one processor)\n")
    cis = []
    for rho in (0.3, 0.5, 0.7, 0.85):
        rate = rho * NODES * SERVICE_RATE
        label = f"rho={rho:g}"
        static = run(StaticSpaceSharing(1), rate, seed=7)
        ts = run(TimeSharing(), rate, seed=7)
        series[f"static ({NODES}x1)"][label] = static.steady["mean"]
        series["time-sharing"][label] = ts.steady["mean"]
        series[f"M/M/{NODES} theory"][label] = mmc_mean_response(
            rate, SERVICE_RATE, NODES)
        cis.append((rho, static, ts))
    print(render_series(series))
    print("Steady-state means are MSER-truncated with batch-means 95% CIs:")
    for rho, static, ts in cis:
        s, t = static.steady, ts.steady
        print(f"  rho={rho:<5g} static {s['mean']:.3f}±{s['ci95']:.3f}s "
              f"(cut {s['warmup_jobs']} warm-up jobs"
              f"{'' if s['sound'] else ', CI UNSOUND'})   "
              f"ts {t['mean']:.3f}±{t['ci95']:.3f}s "
              f"p99={ts.percentile_response(99):.2f}s")
    print(f"\nStatic with {NODES} single-processor partitions is an "
          f"M/M/{NODES} queue — the simulation tracks Erlang C.")
    print("Time-sharing wins twice over here: each adaptive job spreads")
    print("over the whole machine (a ~4x speedup when the system is")
    print("lightly loaded), and at high load processor sharing keeps")
    print("small jobs from queueing behind large ones (CV = 1 demands).")


if __name__ == "__main__":
    main()
