#!/usr/bin/env python
"""Gang scheduling extension: co-scheduling a job's processes.

Gang scheduling gives each job exclusive, coordinated time slots across
all of its partition's processors (Ousterhout's co-scheduling) — the
natural refinement of the paper's hybrid policy.  This example compares
hybrid vs gang for two workload types:

- the paper's fork-join matmul (little to co-schedule: one scatter, one
  gather), where the slot fill/drain overhead makes gang lose;
- an iterative stencil (boundary exchange every iteration), where
  co-scheduling keeps communicating neighbours running simultaneously.

Run:  python examples/gang_scheduling.py
"""

from repro.core import (
    GangScheduling,
    HybridPolicy,
    MulticomputerSystem,
    SystemConfig,
)
from repro.trace import render_bars
from repro.workload import (
    BatchWorkload,
    JobSpec,
    StencilApplication,
    standard_batch,
)


def compare(batch, partition_size=8, topology="mesh", gang_slot=0.05):
    config = SystemConfig(num_nodes=16, topology=topology)
    out = {}
    for name, policy in (
        ("hybrid", HybridPolicy(partition_size)),
        (f"gang ({gang_slot * 1000:.0f}ms slots)",
         GangScheduling(partition_size, gang_slot=gang_slot)),
    ):
        result = MulticomputerSystem(config, policy).run_batch(batch)
        out[name] = result.mean_response_time
    return out


def main():
    print("=== Fork-join matmul (the paper's workload)\n")
    batch = standard_batch("matmul", architecture="adaptive")
    means = compare(batch)
    print(render_bars(means, unit="s"))

    print("=== Iterative stencil (neighbour exchange every iteration)\n")
    stencil = StencilApplication(220, iterations=30, architecture="adaptive")
    small = StencilApplication(110, iterations=30, architecture="adaptive")
    batch = BatchWorkload(
        [JobSpec(small, "small")] * 6 + [JobSpec(stencil, "large")] * 2,
        description="stencil batch",
    )
    means = compare(batch)
    print(render_bars(means, unit="s"))

    print("Gang scheduling pays a slot fill/drain cost, and buys back")
    print("rendezvous time only when jobs synchronise mid-computation —")
    print("compare how much closer it gets on the stencil workload.")


if __name__ == "__main__":
    main()
