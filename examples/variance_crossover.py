#!/usr/bin/env python
"""The variance crossover: when does time-sharing beat static?

The paper's batches (12 small + 4 large jobs) have moderate
service-demand variance, and static space-sharing wins.  Section 5.2
notes — citing the companion technical report — that with *higher*
variance time-sharing comes out ahead: under FCFS a small job stuck
behind a monopolising large job pays the large job's whole service
time, while round-robin sharing lets it slip through.

This example sweeps the coefficient of variation of a synthetic
fork-join workload and finds the crossover point.

Run:  python examples/variance_crossover.py
"""

from repro.experiments.ablations import variance_crossover
from repro.experiments.report import format_ablation
from repro.trace import render_series


def main():
    rows, columns = variance_crossover(
        cvs=(0.0, 0.25, 0.5, 1.0, 2.0, 4.0)
    )
    print(format_ablation(rows, columns,
                          title="Mean response time vs demand variability"))

    series = {"static": {}, "timesharing": {}}
    for row in rows:
        label = f"cv={row['cv']:g}"
        series["static"][label] = row["static"]
        series["timesharing"][label] = row["timesharing"]
    print(render_series(series))

    crossover = next((row["cv"] for row in rows if row["ts/static"] < 1.0),
                     None)
    if crossover is None:
        print("no crossover in the swept range")
    else:
        print(f"time-sharing overtakes static space-sharing around "
              f"CV ~ {crossover:g}")
    print("\nThe paper's own batch sits at CV ~ 1.1, near this crossover")
    print("but on the static-friendly side once the communication and")
    print("memory contention of real time-sharing is paid — which is why")
    print("static wins Figures 3-6 while the companion report sees")
    print("time-sharing win at higher variance.")


if __name__ == "__main__":
    main()
