#!/usr/bin/env python
"""Single-job speedup curves: why the paper's partition sizes matter.

Static space-sharing at partition size p serves every job with the
machine's single-job speedup S(p).  This example measures S(p) and the
parallel efficiency E(p) for the paper's two applications (plus the
butterfly extension) across topologies, and reports the break-even
partition size — the largest p that still keeps efficiency above 50%,
beyond which serial execution on half the machine would win.

Run:  python examples/speedup_curves.py
"""

from repro.experiments import crossover_partition_size, speedup_curve
from repro.experiments.report import format_ablation
from repro.workload import (
    ButterflyApplication,
    MatMulApplication,
    SortApplication,
)


APPS = {
    "matmul(110) adaptive": lambda p: MatMulApplication(
        110, architecture="adaptive"),
    "sort(14000) adaptive": lambda p: SortApplication(
        14_000, architecture="adaptive"),
    "butterfly(16384)": lambda p: ButterflyApplication(
        16_384, architecture="adaptive"),
}


def main():
    for topology in ("linear", "hypercube"):
        print(f"=== Topology: {topology}\n")
        for name, factory in APPS.items():
            sizes = (1, 2, 4, 8) if topology == "hypercube" else (1, 2, 4, 8, 16)
            rows, columns = speedup_curve(factory, partition_sizes=sizes,
                                          topology=topology)
            print(format_ablation(rows, columns, title=name))
            breakeven = crossover_partition_size(rows)
            print(f"  break-even partition size (efficiency >= 50%): "
                  f"{breakeven}\n")
    print("Sort's quadratic worker phase gives it superlinear speedup in")
    print("the adaptive architecture (more processes = less total work!),")
    print("matmul saturates as the coordinator's distribution serialises,")
    print("and the butterfly depends on the topology matching its")
    print("exchange pattern.")


if __name__ == "__main__":
    main()
