#!/usr/bin/env python
"""Quickstart: run one batch under each scheduling policy and compare.

This is the paper's core experiment in miniature: a batch of 16 jobs
(12 small + 4 large matrix multiplications) on a simulated 16-node
Transputer system, scheduled by

- static space-sharing (4 partitions of 4, one job each, FCFS),
- the hybrid policy (the same partitions, time-shared), and
- pure time-sharing (one 16-node partition, all 16 jobs at once),

reporting the paper's metric — mean batch response time — plus a Gantt
chart showing *why* the policies differ.

Run:  python examples/quickstart.py
"""

from repro.core import (
    HybridPolicy,
    MulticomputerSystem,
    StaticSpaceSharing,
    SystemConfig,
    TimeSharing,
)
from repro.trace import render_bars, render_gantt
from repro.workload import standard_batch


def main():
    config = SystemConfig(num_nodes=16, topology="mesh")
    batch = standard_batch("matmul", architecture="adaptive")

    policies = {
        "static (4x4)": StaticSpaceSharing(partition_size=4),
        "hybrid (4x4)": HybridPolicy(partition_size=4),
        "time-sharing": TimeSharing(),
    }

    print("Batch: 12 small (55x55) + 4 large (110x110) matrix multiplies")
    print(f"Machine: 16 T805-like nodes, {config.topology} partitions\n")

    means = {}
    results = {}
    for name, policy in policies.items():
        system = MulticomputerSystem(config, policy)
        result = system.run_batch(batch)
        means[name] = result.mean_response_time
        results[name] = result
        print(f"{name:14s} mean response {result.mean_response_time:7.3f}s  "
              f"makespan {result.makespan:7.3f}s  "
              f"cpu {result.snapshot.mean_cpu_utilization:5.1%}")

    print("\nMean batch response time (lower is better):")
    print(render_bars(means, unit="s"))

    print("Job timeline under static space-sharing — jobs queue ('.') for")
    print("a free partition, then run ('#') to completion:\n")
    print(render_gantt(results["static (4x4)"].jobs, width=64))

    print("Job timeline under pure time-sharing — every job starts at once")
    print("and round-robin shares the machine:\n")
    print(render_gantt(results["time-sharing"].jobs, width=64))


if __name__ == "__main__":
    main()
